"""Property-based invariants for the arena allocator (hypothesis).

Runs entirely on :class:`~repro.buffers.HeapSegmentProvider` — the
allocator logic under test is identical to what the shared-memory
backend runs, without touching ``/dev/shm``.  Three invariants:

* live blocks never overlap, within or across segments;
* freed space is reused — an alloc/free/alloc cycle of one size lands
  on the same handle and maps no new segment;
* mapped bytes are bounded by the high-water mark of live bytes (under
  stack-discipline frees, where fragmentation cannot pin segments):
  every segment except the newest was more than half full when its
  successor was mapped.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers import ALIGNMENT, Arena, HeapSegmentProvider
from repro.buffers.arena import _align, _ceil_pow2

SEGMENT_BYTES = 4096

#: An op is ("alloc", nbytes) or ("free", index-into-live).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 3 * SEGMENT_BYTES)),
        st.tuples(st.just("free"), st.integers(0, 1_000_000)),
    ),
    max_size=80,
)


def _assert_no_overlap(live):
    """Live (segment, offset, aligned_size) triples must be disjoint."""
    by_segment: dict = {}
    for segment, offset, size in live:
        by_segment.setdefault(segment, []).append((offset, size))
    for runs in by_segment.values():
        runs.sort()
        for (offset, size), (next_offset, _) in zip(runs, runs[1:]):
            assert offset + size <= next_offset, \
                f"overlap: [{offset}, {offset + size}) vs {next_offset}"


@settings(max_examples=80, deadline=None)
@given(ops_strategy)
def test_live_regions_never_overlap(ops):
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    live = []
    for op, value in ops:
        if op == "alloc":
            segment, offset = arena.alloc(value)
            live.append((segment, offset, _align(value)))
        elif live:
            segment, offset, _ = live.pop(value % len(live))
            arena.free(segment, offset)
        _assert_no_overlap(live)
    stats = arena.stats()
    assert stats.live_blocks == len(live)
    assert stats.live_bytes == sum(size for _, _, size in live)
    assert stats.total_allocs - stats.total_frees == len(live)


@settings(max_examples=80, deadline=None)
@given(ops_strategy, st.integers(1, SEGMENT_BYTES))
def test_freed_space_is_reused(ops, probe_bytes):
    """After any op history, an alloc/free/alloc cycle of one size gets
    the same handle back and maps nothing new."""
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    live = []
    for op, value in ops:
        if op == "alloc":
            live.append(arena.alloc(value))
        elif live:
            arena.free(*live.pop(value % len(live)))
    first = arena.alloc(probe_bytes)
    mapped = arena.stats().mapped_bytes
    arena.free(*first)
    second = arena.alloc(probe_bytes)
    assert second == first
    assert arena.stats().mapped_bytes == mapped


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 3 * SEGMENT_BYTES),
                          st.booleans()), max_size=60))
def test_mapped_bytes_bounded_by_high_water_lifo(plan):
    """Stack-discipline workload: mapped stays within 2x the high-water
    mark plus one segment of slack per boundary effect.

    A new segment is only mapped when no existing free run fits, so at
    that moment every older segment is more than ``size - request``
    full; with LIFO frees (no fragmentation) that bounds total mapped
    bytes by twice the peak of live bytes.
    """
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    stack = []
    for nbytes, pop_after in plan:
        stack.append(arena.alloc(nbytes))
        if pop_after and stack:
            arena.free(*stack.pop())
        stats = arena.stats()
        largest = max(SEGMENT_BYTES,
                      _ceil_pow2(_align(3 * SEGMENT_BYTES)))
        assert stats.mapped_bytes \
            <= 2 * stats.high_water_bytes + 2 * largest
    while stack:
        arena.free(*stack.pop())
    assert arena.stats().live_bytes == 0


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 2 * SEGMENT_BYTES), st.integers(0, 5))
def test_refcount_requires_matching_frees(nbytes, retains):
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    segment, offset = arena.alloc(nbytes)
    for _ in range(retains):
        arena.retain(segment, offset)
    for _ in range(retains):
        assert arena.free(segment, offset) is False
    assert arena.free(segment, offset) is True
    with pytest.raises(BufferError):
        arena.free(segment, offset)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, SEGMENT_BYTES // 2),
                min_size=1, max_size=12))
def test_views_round_trip_bytes(sizes):
    """Each block's view holds exactly the bytes written to it, even
    with neighbours written afterwards."""
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    handles = []
    for index, nbytes in enumerate(sizes):
        segment, offset = arena.alloc(nbytes)
        arena.view(segment, offset, nbytes)[:] = \
            bytes([index % 251] * nbytes)
        handles.append((segment, offset, nbytes, index % 251))
    for segment, offset, nbytes, fill in handles:
        assert bytes(arena.view(segment, offset, nbytes)) \
            == bytes([fill] * nbytes)


def test_alignment_of_every_offset():
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    for nbytes in (1, 63, 64, 65, 1000, 5000):
        _, offset = arena.alloc(nbytes)
        assert offset % ALIGNMENT == 0


def test_close_is_idempotent_and_frees_become_noops():
    arena = Arena(HeapSegmentProvider(), segment_bytes=SEGMENT_BYTES)
    handle = arena.alloc(128)
    arena.close()
    arena.close()
    assert arena.free(*handle) is False    # late GC finalizers stay safe
    with pytest.raises(BufferError):
        arena.alloc(1)
