"""One shared contract suite for every buffer backend.

Heap and shared-memory backends must be interchangeable under the
hot-path containers: allocation/resolve round trips are byte-identical,
release semantics (refcounts, double-free) match, and every array the
evaluation and serving paths produce is bit-for-bit equal whichever
backend is active.  Backend-specific semantics — zero-copy handles,
reattach-after-fork, child-side allocation guards — are pinned
explicitly per backend below.
"""

import gc
import io
import multiprocessing
import pickle
import zipfile

import numpy as np
import pytest

from repro import buffers
from repro.buffers import ArenaArray, BufferRef, HeapBackend
from repro.core import AfterProblem, evaluate_targets
from repro.geometry.batched import BatchedOcclusionConverter
from repro.models.baselines import NearestRecommender
from repro.training import BufferStore

from .conftest import BACKENDS, make_backend, make_room

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not HAS_FORK, reason="fork unavailable")


class TestAllocationContract:
    def test_empty_has_shape_dtype_and_is_writable(self, backend):
        array = backend.empty((3, 4), np.float32)
        assert array.shape == (3, 4) and array.dtype == np.float32
        array[:] = 7.5
        assert (array == 7.5).all()

    def test_zeros_is_zero_filled(self, backend):
        array = backend.zeros((5, 2), np.int64)
        assert array.dtype == np.int64
        np.testing.assert_array_equal(array, np.zeros((5, 2), np.int64))

    def test_allocate_resolve_round_trip(self, backend):
        ref = backend.allocate((4, 3), np.float64)
        assert isinstance(ref, BufferRef)
        assert ref.shape == (4, 3) and ref.nbytes == 96
        view = backend.resolve(ref)
        view[:] = np.arange(12, dtype=np.float64).reshape(4, 3)
        again = backend.resolve(ref)
        np.testing.assert_array_equal(
            again, np.arange(12, dtype=np.float64).reshape(4, 3))
        backend.release(ref)

    def test_release_frees_and_double_free_raises(self, backend):
        before = backend.stats().live_blocks
        ref = backend.allocate((8,), np.uint8)
        assert backend.stats().live_blocks == before + 1
        backend.release(ref)
        assert backend.stats().live_blocks == before
        with pytest.raises(BufferError):
            backend.release(ref)

    def test_retain_adds_one_reference(self, backend):
        ref = backend.allocate((8,), np.uint8)
        backend.retain(ref)
        backend.release(ref)          # drops the retained reference
        assert backend.stats().live_blocks == 1
        backend.release(ref)          # drops the original
        assert backend.stats().live_blocks == 0
        with pytest.raises(BufferError):
            backend.release(ref)

    def test_export_ref_pickles_and_resolves(self, backend):
        array = backend.empty((6,), np.float64)
        array[:] = np.arange(6, dtype=np.float64)
        ref = backend.export(array)
        clone = pickle.loads(pickle.dumps(ref))
        np.testing.assert_array_equal(backend.resolve(clone), array)

    def test_export_handle_size_matches_backend_kind(self, backend):
        """Shared handles are (segment, offset) — a few hundred bytes no
        matter the array; heap handles necessarily carry the payload."""
        array = backend.empty((256, 256), np.float64)
        array.fill(1.0)
        ref = backend.export(array)
        encoded = len(pickle.dumps(ref, pickle.HIGHEST_PROTOCOL))
        if backend.shared:
            assert ref.payload is None
            assert encoded < 1024
        else:
            assert ref.payload is not None
            assert encoded > array.nbytes

    def test_stats_track_live_bytes(self, backend):
        ref = backend.allocate((1024,), np.uint8)
        stats = backend.stats()
        assert stats.backend == backend.name
        assert stats.shared == backend.shared
        assert stats.live_bytes >= 1024
        backend.release(ref)

    def test_module_helpers_route_through_installed_backend(self, backend):
        with buffers.use_backend(backend):
            assert buffers.active() is backend
            array = buffers.zeros((4,), np.float64)
            np.testing.assert_array_equal(array, np.zeros(4))
            if backend.shared:
                assert isinstance(buffers.empty((4,), np.float64),
                                  ArenaArray)


class TestGcOwnership:
    def test_views_keep_the_allocation_alive(self, backend):
        if not backend.shared:
            pytest.skip("heap arrays are plain ndarrays (GC handles them)")
        array = backend.empty((128,), np.float64)
        view = array[10:20]
        del array
        gc.collect()
        assert backend.stats().live_blocks == 1
        view[:] = 3.0      # still valid memory
        del view
        gc.collect()
        assert backend.stats().live_blocks == 0


def _capture_room_graphs(kind, positions, targets):
    with buffers.use_backend(kind):
        graphs = BatchedOcclusionConverter().convert_rooms(
            positions, targets)
        return (graphs.adjacency.tobytes(), graphs.distances.tobytes(),
                [graph.adjacency.tobytes() for graph in graphs])


def _capture_episode_frames(kind, seed):
    with buffers.use_backend(kind):
        room = make_room(seed=seed)
        problem = AfterProblem(room, target=1)
        frames = problem.episode_frames()
        return [(frame.preference.tobytes(), frame.presence.tobytes(),
                 frame.forced.tobytes()) for frame in frames]


def _capture_evaluation(kind, seed, workers=None):
    with buffers.use_backend(kind):
        room = make_room(seed=seed)
        result = evaluate_targets(room, NearestRecommender(),
                                  [0, 2, 5], engine="batched",
                                  workers=workers)
        return ([(e.after_utility, e.preference, e.presence,
                  e.occlusion_rate) for e in result.episodes],
                [e.per_step_after.tobytes() for e in result.episodes],
                [e.recommendations.tobytes() for e in result.episodes])


ARRAYS = {
    "model/weight": np.arange(6, dtype=np.float64).reshape(2, 3),
    "optim/m": np.full(4, 0.25, dtype=np.float32),
}


class TestCrossBackendByteEquality:
    """The acceptance bar: heap and shm produce bit-identical data."""

    def test_room_graphs_bit_identical(self):
        rng = np.random.default_rng(7)
        positions = rng.uniform(0, 8, size=(5, 12, 2))
        captured = [_capture_room_graphs(kind, positions, [0] * 5)
                    for kind in BACKENDS]
        assert captured[0] == captured[1]

    def test_episode_frames_bit_identical(self):
        captured = [_capture_episode_frames(kind, seed=3)
                    for kind in BACKENDS]
        assert captured[0] == captured[1]

    def test_evaluation_metrics_bit_identical(self):
        captured = [_capture_evaluation(kind, seed=5) for kind in BACKENDS]
        assert captured[0] == captured[1]

    @fork_only
    def test_fork_parallel_evaluation_bit_identical(self):
        serial = _capture_evaluation("heap", seed=5)
        for kind in BACKENDS:
            assert _capture_evaluation(kind, seed=5, workers=2) == serial

    def test_checkpoint_payload_bytes_identical(self):
        entries = []
        for kind in BACKENDS:
            backend = make_backend(kind)
            try:
                with BufferStore(backend) as store:
                    store.write_arrays("ckpt-00001.npz", ARRAYS)
                    raw = store._read_bytes("ckpt-00001.npz")
                with zipfile.ZipFile(io.BytesIO(raw)) as archive:
                    entries.append({name: archive.read(name)
                                    for name in sorted(archive.namelist())})
            finally:
                backend.close()
        assert entries[0] == entries[1]


@fork_only
class TestForkSemantics:
    """Reattach-after-fork behaviour, pinned per backend.

    Shared-memory handles are *addresses*: a fresh backend in another
    process maps the same bytes, and writes travel both ways.  Heap
    handles are *values*: a fork sees a copy-on-write snapshot and
    writes stay private.  Both semantics are load-bearing — the
    evaluation slab path relies on the former, determinism of the heap
    path on the latter.
    """

    def _run_child(self, target, args):
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        process = context.Process(target=target, args=(queue,) + args)
        process.start()
        result = queue.get(timeout=30)
        process.join(timeout=30)
        assert process.exitcode == 0
        return result

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_child_resolves_parent_handle(self, kind):
        backend = make_backend(kind)
        try:
            array = backend.empty((8,), np.float64)
            array[:] = np.arange(8, dtype=np.float64)
            ref = backend.export(array)

            def child(queue):
                fresh = make_backend(kind)
                try:
                    seen = fresh.resolve(ref)
                    matches = bool(
                        (np.asarray(seen)
                         == np.arange(8, dtype=np.float64)).all())
                    seen[0] = 99.0
                    queue.put(matches)
                finally:
                    fresh.close()

            assert self._run_child(child, ())
            # Writes through a *shared* handle are visible to the
            # parent; by-value handles stay copies.
            if backend.shared:
                assert array[0] == 99.0
            else:
                assert array[0] == 0.0
        finally:
            backend.close()

    def test_child_cannot_allocate_from_inherited_arena(self):
        backend = make_backend("shm")
        try:
            parent_array = backend.empty((16,), np.float64)
            assert backend.can_allocate()

            def child(queue):
                plain = backend.empty((4,), np.float64)
                queue.put((backend.can_allocate(),
                           isinstance(plain, ArenaArray)))

            can_allocate, got_arena_array = self._run_child(child, ())
            assert not can_allocate
            assert not got_arena_array
            # The parent is unaffected by the child's degradation.
            assert backend.can_allocate()
            del parent_array
        finally:
            backend.close()

    def test_child_close_leaves_parent_segments_alive(self):
        backend = make_backend("shm")
        try:
            array = backend.empty((32,), np.float64)
            array.fill(4.25)
            ref = backend.export(array)

            def child(queue):
                backend.close()     # inherited — must not unlink
                queue.put(True)

            assert self._run_child(child, ())
            np.testing.assert_array_equal(backend.resolve(ref),
                                          np.full(32, 4.25))
        finally:
            backend.close()


class TestHeapBackendSpecifics:
    def test_heap_arrays_are_numpy_allocations(self):
        backend = HeapBackend()
        array = backend.empty((3,), np.float64)
        assert type(array) is np.ndarray
        assert backend.stats().mapped_bytes == 0
        backend.close()

    def test_release_of_by_value_ref_raises_on_shm(self):
        backend = make_backend("shm")
        try:
            ref = BufferRef(backend="heap", shape=(2,), dtype="float64",
                            payload=np.zeros(2))
            with pytest.raises(BufferError):
                backend.release(ref)
        finally:
            backend.close()
