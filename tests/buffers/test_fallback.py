"""Silent heap fallback when shared memory is unavailable or fails.

The seam must never crash a caller because ``/dev/shm`` filled up or
the platform lacks POSIX shared memory: segment-creation failure flips
the backend to heap allocation with exactly one ``RuntimeWarning`` and
one ``buffers.fallback`` obs event, and ``create_backend("shm")`` on a
broken platform hands back a plain :class:`HeapBackend` the same way.
"""

import errno
import warnings

import numpy as np
import pytest

from repro import buffers
from repro.buffers import ArenaArray, HeapBackend, SharedMemoryBackend
from repro.buffers import shm as shm_module
from repro.core import evaluate_targets
from repro.models.baselines import NearestRecommender
from repro.obs import EVENTS

from .conftest import make_backend, make_room


class _FailingProvider:
    """Segment provider that always fails like a full ``/dev/shm``."""

    def create(self, size):
        raise OSError(errno.ENOSPC, "No space left on device")


@pytest.fixture
def events():
    """The process-wide event log, enabled and drained for one test."""
    EVENTS.records.clear()
    EVENTS.counts.clear()
    was_enabled = EVENTS.enabled
    EVENTS.enable()
    yield EVENTS
    EVENTS.enabled = was_enabled
    EVENTS.records.clear()
    EVENTS.counts.clear()


def _force_failure(backend):
    backend._arena.provider = _FailingProvider()


def test_segment_failure_degrades_with_single_warning(events):
    backend = make_backend("shm")
    try:
        _force_failure(backend)
        with pytest.warns(RuntimeWarning, match="falling back"):
            array = backend.empty((8,), np.float64)
        assert type(array) is np.ndarray
        assert not isinstance(array, ArenaArray)
        assert backend.degraded
        # Exactly one warning and one event, however many allocations
        # follow.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for _ in range(5):
                assert type(backend.empty((8,), np.float64)) is np.ndarray
            assert backend.try_shared_empty((8,), np.float64) is None
        fallback = [record for record in events.records
                    if record["type"] == "buffers.fallback"]
        assert len(fallback) == 1
        assert fallback[0]["backend"] == "shm"
        assert "No space left" in fallback[0]["reason"]
    finally:
        backend.close()


def test_degraded_backend_refuses_explicit_allocate():
    backend = make_backend("shm")
    try:
        _force_failure(backend)
        with pytest.warns(RuntimeWarning):
            backend.empty((8,), np.float64)
        assert not backend.can_allocate()
        with pytest.raises(BufferError):
            backend.allocate((8,), np.float64)
    finally:
        backend.close()


def test_evaluation_still_correct_after_degradation():
    """A mid-run degradation changes *where* arrays live, not values."""
    with buffers.use_backend("heap"):
        room = make_room(seed=4)
        gold = evaluate_targets(room, NearestRecommender(), [0, 3],
                                engine="batched")
    backend = make_backend("shm")
    try:
        _force_failure(backend)
        with buffers.use_backend(backend), \
                pytest.warns(RuntimeWarning):
            room = make_room(seed=4)
            degraded = evaluate_targets(room, NearestRecommender(),
                                        [0, 3], engine="batched")
        assert degraded.after_utility == gold.after_utility
        assert degraded.occlusion_rate == gold.occlusion_rate
    finally:
        backend.close()


def test_create_backend_shm_unavailable_returns_heap(monkeypatch, events):
    """Constructor-level failure (no shm at all) falls back at creation."""

    class _Broken(SharedMemoryBackend):
        def __init__(self, **kwargs):
            raise ImportError("no multiprocessing.shared_memory here")

    monkeypatch.setattr(buffers, "SharedMemoryBackend", _Broken)
    with pytest.warns(RuntimeWarning, match="unavailable"):
        backend = buffers.create_backend("shm")
    assert isinstance(backend, HeapBackend)
    assert [record["type"] for record in events.records] \
        == ["buffers.fallback"]
    # The fallback backend is fully functional.
    array = backend.zeros((3,), np.float64)
    np.testing.assert_array_equal(array, np.zeros(3))


def test_create_backend_probe_failure_returns_heap(monkeypatch):
    """First-allocation failure (creatable module, unusable segments)."""

    class _NoSpace:
        def __init__(self, *args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(shm_module, "_ShmSegmentProvider", _NoSpace)
    with pytest.warns(RuntimeWarning):
        backend = buffers.create_backend("shm")
    assert isinstance(backend, HeapBackend)


def test_unknown_backend_name_raises():
    with pytest.raises(ValueError, match="unknown buffer backend"):
        buffers.create_backend("gpu")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(buffers.BACKEND_ENV_VAR, "shm")
    previous = buffers.set_backend(None)
    try:
        backend = buffers.active()
        assert backend.name == "shm"
        backend.close()
    finally:
        buffers.set_backend(previous)


def test_heap_is_the_default(monkeypatch):
    monkeypatch.delenv(buffers.BACKEND_ENV_VAR, raising=False)
    previous = buffers.set_backend(None)
    try:
        assert buffers.active().name == "heap"
    finally:
        buffers.set_backend(previous)
