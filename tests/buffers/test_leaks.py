"""Leak checks for the shared-memory backend on real workloads.

Every test drives an actual hot path — fork-parallel
``evaluate_targets``, a micro-batching engine run — on a shm backend
and then proves the arena drained: no live blocks once the results die,
``/dev/shm`` restored to its pre-test census after ``close()``, and a
worker raising mid-chunk leaves nothing behind either.  A subprocess
test additionally pins that no ``resource_tracker`` warnings reach
stderr (the cpython#82300 failure mode the attach path works around).
"""

import gc
import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import buffers
from repro.buffers import SEGMENT_PREFIX
from repro.core import evaluate_targets
from repro.models.baselines import NearestRecommender
from repro.serving import ReplayDriver, SessionEngine

from .conftest import make_backend, make_room  # noqa: F401

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not HAS_FORK, reason="fork unavailable")


def shm_census() -> set:
    """Names of our segments currently in ``/dev/shm``."""
    root = "/dev/shm"
    if not os.path.isdir(root):
        return set()
    return {name for name in os.listdir(root) if SEGMENT_PREFIX in name}


class ExplodingRecommender(NearestRecommender):
    """Raises on one specific target — mid-chunk, inside the worker."""

    def reset(self, problem):
        if problem.target == 5:
            raise RuntimeError("injected mid-chunk failure")
        super().reset(problem)


@fork_only
def test_parallel_evaluation_releases_every_block():
    before = shm_census()
    with buffers.use_backend("shm") as backend:
        room = make_room(num_users=12, num_steps=5, seed=1)
        result = evaluate_targets(room, NearestRecommender(),
                                  list(range(8)), engine="batched",
                                  workers=2)
        assert len(result.episodes) == 8
        assert backend.stats().live_blocks > 0
        # Results and room caches are the only owners; dropping them
        # must drain the arena completely.
        del result, room
        gc.collect()
        assert backend.stats().live_blocks == 0
        assert backend.stats().live_bytes == 0
    assert shm_census() == before


@fork_only
def test_worker_raising_mid_chunk_still_unlinks():
    before = shm_census()
    with buffers.use_backend("shm") as backend:
        room = make_room(num_users=12, num_steps=5, seed=1)
        with pytest.raises(RuntimeError, match="injected"):
            evaluate_targets(room, ExplodingRecommender(),
                             list(range(8)), engine="batched", workers=2)
        del room
        gc.collect()
        assert backend.stats().live_blocks == 0
    assert shm_census() == before


def test_engine_stress_run_releases_and_unlinks():
    before = shm_census()
    with buffers.use_backend("shm") as backend:
        engine = SessionEngine(max_batch=4, max_queue=10)
        driver = ReplayDriver(engine, pump_interval=2)
        for index in range(5):
            driver.add_room(make_room(num_users=10, num_steps=5,
                                      seed=20 + index),
                            target=0, recommender=NearestRecommender(),
                            session_id=f"room{index}")
        driver.run()
        sessions = [engine.session(f"room{index}") for index in range(5)]
        for session in sessions:
            assert len(session.steps) == 6
        engine.close()
        del engine, driver, sessions
        gc.collect()
        assert backend.stats().live_blocks == 0
    assert shm_census() == before


def test_exception_unwinding_past_allocations_still_unlinks():
    before = shm_census()
    with pytest.raises(RuntimeError, match="unwound"):
        with buffers.use_backend("shm") as backend:
            held = [backend.empty((256,), np.float64) for _ in range(4)]
            assert backend.stats().live_blocks == 4
            raise RuntimeError("unwound")
    # use_backend's finally closed the backend: names are gone even
    # though `held` arrays were never released explicitly.
    assert shm_census() == before


def test_close_is_idempotent_and_atexit_safe():
    backend = make_backend("shm")
    backend.empty((64,), np.float64)
    names = set(backend.segment_names())
    assert names <= shm_census()
    backend.close()
    backend.close()
    assert not names & shm_census()


_SUBPROCESS_SCRIPT = """
import warnings
from repro import buffers
from repro.core import evaluate_targets
from repro.datasets import RoomConfig, generate_timik_room
from repro.models.baselines import NearestRecommender

with warnings.catch_warnings():
    warnings.simplefilter("error")        # any warning -> non-zero exit
    with buffers.use_backend("shm"):
        room = generate_timik_room(
            RoomConfig(num_users=12, num_steps=5), seed=1)
        result = evaluate_targets(room, NearestRecommender(),
                                  list(range(6)), engine="batched",
                                  workers=2)
print("OK", round(result.after_utility, 9))
"""


@fork_only
def test_no_resource_tracker_warnings_end_to_end():
    """A full fork-parallel run in a clean interpreter exits silently.

    ``resource_tracker`` leak complaints are printed at interpreter
    exit, past any ``finally`` — only a subprocess can observe them.
    """
    before = shm_census()
    env = dict(os.environ,
               PYTHONPATH=os.path.abspath("src"),
               PYTHONWARNINGS="error")
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("OK ")
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
    assert shm_census() == before
