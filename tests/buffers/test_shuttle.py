"""The :class:`~repro.buffers.FrameShuttle` — reusable frame blocks.

The shuttle is the fleet's frame transport: one shared block per
session, rewritten in place every submit, shipped as a
:class:`~repro.buffers.BufferRef`; on a backend without shareable
memory every put degrades to returning the array itself (by-value
pickle fallback).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.buffers import BufferRef, FrameShuttle, HeapBackend

from .conftest import make_backend

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


def frame(seed, shape=(8, 2)):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape)


class TestSharedPath:
    def test_put_returns_ref_and_roundtrips(self):
        with make_backend("shm") as backend, \
                FrameShuttle(backend) as shuttle:
            payload = frame(0)
            ref = shuttle.put("room0", payload)
            assert isinstance(ref, BufferRef)
            np.testing.assert_array_equal(backend.resolve(ref), payload)
            assert shuttle.shared_puts == 1
            assert shuttle.fallback_puts == 0

    def test_block_is_reused_across_puts(self):
        with make_backend("shm") as backend, \
                FrameShuttle(backend) as shuttle:
            first = shuttle.put("room0", frame(1))
            second = shuttle.put("room0", frame(2))
            assert (first.segment, first.offset) \
                == (second.segment, second.offset)
            assert len(shuttle) == 1
            np.testing.assert_array_equal(backend.resolve(second),
                                          frame(2))

    def test_shape_change_reallocates(self):
        with make_backend("shm") as backend, \
                FrameShuttle(backend) as shuttle:
            shuttle.put("room0", frame(3, shape=(8, 2)))
            grown = shuttle.put("room0", frame(4, shape=(12, 2)))
            np.testing.assert_array_equal(backend.resolve(grown),
                                          frame(4, shape=(12, 2)))
            assert len(shuttle) == 1
            assert backend.stats().live_blocks == 1

    def test_distinct_keys_get_distinct_blocks(self):
        with make_backend("shm") as backend, \
                FrameShuttle(backend) as shuttle:
            refs = [shuttle.put(f"room{i}", frame(i)) for i in range(4)]
            handles = {(ref.segment, ref.offset) for ref in refs}
            assert len(handles) == 4
            for i, ref in enumerate(refs):
                np.testing.assert_array_equal(backend.resolve(ref),
                                              frame(i))

    def test_drop_and_close_release_blocks(self):
        backend = make_backend("shm")
        try:
            shuttle = FrameShuttle(backend)
            for i in range(3):
                shuttle.put(f"room{i}", frame(i))
            assert backend.stats().live_blocks == 3
            shuttle.drop("room0")
            shuttle.drop("never-opened")     # unknown keys are a no-op
            assert backend.stats().live_blocks == 2
            shuttle.close()
            assert backend.stats().live_blocks == 0
            with pytest.raises(BufferError):
                shuttle.put("room1", frame(9))
        finally:
            backend.close()

    @fork_available
    def test_child_process_reads_the_staged_frame(self):
        """The fleet's actual topology: fork first, allocate later —
        the child resolves a post-fork block through the inherited
        segment mapping."""
        with make_backend("shm") as backend, \
                FrameShuttle(backend) as shuttle:
            read_fd, write_fd = os.pipe()

            def child(ref):
                os.close(write_fd)
                os.read(read_fd, 1)
                value = float(np.asarray(backend.resolve(ref)).sum())
                os._exit(0 if abs(value - frame(7).sum()) < 1e-12
                         else 1)

            ref = shuttle.put("room0", frame(7))
            context = multiprocessing.get_context("fork")
            process = context.Process(target=child, args=(ref,))
            process.start()
            os.close(read_fd)
            os.write(write_fd, b"x")
            os.close(write_fd)
            process.join(timeout=10.0)
            assert process.exitcode == 0


class TestFallbackPath:
    def test_heap_backend_puts_by_value(self):
        with FrameShuttle(HeapBackend()) as shuttle:
            payload = frame(5)
            out = shuttle.put("room0", payload)
            assert out is payload or np.shares_memory(out, payload)
            assert shuttle.fallback_puts == 1
            assert shuttle.shared_puts == 0
            assert len(shuttle) == 0

    @fork_available
    def test_forked_child_falls_back(self):
        """A child may not carve the inherited arena, so its shuttle
        degrades to by-value instead of corrupting the parent's pool."""
        with make_backend("shm") as backend:
            def child():
                shuttle = FrameShuttle(backend)
                out = shuttle.put("room0", frame(6))
                os._exit(0 if isinstance(out, np.ndarray) else 1)

            context = multiprocessing.get_context("fork")
            process = context.Process(target=child)
            process.start()
            process.join(timeout=10.0)
            assert process.exitcode == 0
