"""Repo-wide test fixtures and hygiene helpers.

Besides fixtures, this module hosts the RNG-hygiene scanner used by
``tests/test_rng_hygiene.py``: every random draw in the test and bench
suites must come from an explicitly seeded ``np.random.default_rng`` (or
``np.random.Generator``), never from the legacy global ``np.random.*``
state or a zero-argument ``default_rng()``.  Unseeded draws make
property tests irreproducible and parity failures impossible to replay,
so the scanner turns new offenders into a test failure instead of a
flaky CI mystery months later.
"""

import ast
from pathlib import Path

#: Legacy ``np.random`` module-level functions that draw from (or
#: reseed) the hidden global state.  Calling any of these directly in a
#: test makes the run order-dependent.
LEGACY_NP_RANDOM_ATTRS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "poisson", "binomial", "exponential", "beta", "gamma", "sample",
    "random_integers", "bytes",
})


def _is_np_random(node: ast.AST) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


def _offending_call(node: ast.Call) -> str | None:
    """A human-readable reason if ``node`` is an unseeded RNG call."""
    func = node.func
    if isinstance(func, ast.Attribute):
        # np.random.<legacy draw>(...)
        if func.attr in LEGACY_NP_RANDOM_ATTRS and _is_np_random(func.value):
            return f"legacy global np.random.{func.attr}()"
        # np.random.default_rng() with no seed argument
        if (func.attr == "default_rng" and _is_np_random(func.value)
                and not node.args and not node.keywords):
            return "unseeded np.random.default_rng()"
    # bare default_rng() via `from numpy.random import default_rng`
    if (isinstance(func, ast.Name) and func.id == "default_rng"
            and not node.args and not node.keywords):
        return "unseeded default_rng()"
    return None


def find_unseeded_rng(root: Path) -> list[str]:
    """Scan ``root`` recursively for unseeded RNG calls.

    Returns ``"path:line: reason"`` strings — empty means clean.  Pure
    AST inspection: nothing is imported or executed, so the scan stays
    cheap enough to run as an ordinary test.
    """
    offenders: list[str] = []
    for path in sorted(Path(root).rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                reason = _offending_call(node)
                if reason is not None:
                    offenders.append(
                        f"{path}:{node.lineno}: {reason}")
    return offenders
