"""Shared fixtures for core tests: one small cached room."""

import numpy as np
import pytest

from repro.datasets import RoomConfig, generate_timik_room


@pytest.fixture(scope="session")
def small_room():
    """A small Timik-style room shared across core tests."""
    return generate_timik_room(RoomConfig(num_users=25, num_steps=10), seed=0)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
