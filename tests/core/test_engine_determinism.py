"""Determinism and equivalence of the batched/parallel evaluation engine.

The batched engine, the forked-parallel engine and the reference engine
must produce *identical* metrics (everything except wall-clock
``runtime_ms``), episode by episode.  Also pins the vectorised
``EpisodeResult.continuity`` against its loop definition.
"""

import numpy as np
import pytest

from repro.core import AfterProblem
from repro.core.evaluation import (
    EpisodeResult,
    _evaluate_episode_fast,
    evaluate_episode,
    evaluate_targets,
)
from repro.datasets import RoomConfig, generate_room
from repro.models import NearestRecommender, RandomRecommender

TARGETS = [0, 3, 7, 12, 19]


def fresh_room(seed=3):
    return generate_room("smm", RoomConfig(num_users=24, num_steps=8),
                         seed=seed)


def assert_episodes_identical(a, b):
    assert a.after_utility == b.after_utility
    assert a.preference == b.preference
    assert a.presence == b.presence
    assert a.occlusion_rate == b.occlusion_rate
    np.testing.assert_array_equal(a.per_step_after, b.per_step_after)
    np.testing.assert_array_equal(a.recommendations, b.recommendations)


def assert_aggregates_identical(a, b):
    assert a.after_utility == b.after_utility
    assert a.preference == b.preference
    assert a.presence == b.presence
    assert a.occlusion_rate == b.occlusion_rate
    assert len(a.episodes) == len(b.episodes)
    for episode_a, episode_b in zip(a.episodes, b.episodes):
        assert_episodes_identical(episode_a, episode_b)


@pytest.mark.parametrize("recommender_cls", [NearestRecommender,
                                             RandomRecommender])
def test_batched_engine_matches_reference(recommender_cls):
    reference = evaluate_targets(fresh_room(), recommender_cls(), TARGETS,
                                 engine="reference")
    batched = evaluate_targets(fresh_room(), recommender_cls(), TARGETS,
                               engine="batched")
    assert_aggregates_identical(reference, batched)


def test_parallel_matches_serial():
    room = fresh_room()
    serial = evaluate_targets(room, NearestRecommender(), TARGETS,
                              engine="batched")
    parallel = evaluate_targets(room, NearestRecommender(), TARGETS,
                                engine="batched", workers=3)
    assert_aggregates_identical(serial, parallel)


def test_parallel_is_reproducible_for_stochastic_recommenders():
    # Forking replays a stochastic recommender's RNG per worker, so the
    # parallel run need not equal the serial one — but it must be
    # identical run to run for a fixed worker count.
    first = evaluate_targets(fresh_room(), RandomRecommender(seed=7),
                             TARGETS, engine="batched", workers=2)
    second = evaluate_targets(fresh_room(), RandomRecommender(seed=7),
                              TARGETS, engine="batched", workers=2)
    assert_aggregates_identical(first, second)


def test_parallel_reference_engine_matches_too():
    room = fresh_room()
    serial = evaluate_targets(room, NearestRecommender(), TARGETS,
                              engine="reference")
    parallel = evaluate_targets(room, NearestRecommender(), TARGETS,
                                engine="reference", workers=2)
    assert_aggregates_identical(serial, parallel)


def test_warm_caches_do_not_change_results():
    room = fresh_room()
    first = evaluate_targets(room, NearestRecommender(), TARGETS)
    second = evaluate_targets(room, NearestRecommender(), TARGETS)
    assert_aggregates_identical(first, second)


def test_listed_problems_match_reference_and_do_not_poison_cache():
    room_ref, room_fast = fresh_room(), fresh_room()
    kwargs = {"blocklist": [1, 2], "allowlist": range(18)}
    reference = evaluate_episode(AfterProblem(room_ref, 3, **kwargs),
                                 NearestRecommender())
    fast = _evaluate_episode_fast(AfterProblem(room_fast, 3, **kwargs),
                                  NearestRecommender())
    assert_episodes_identical(reference, fast)

    # The room-level frame cache must be untouched by list pruning.
    plain_ref = evaluate_episode(AfterProblem(room_ref, 3),
                                 NearestRecommender())
    plain_fast = _evaluate_episode_fast(AfterProblem(room_fast, 3),
                                        NearestRecommender())
    assert_episodes_identical(plain_ref, plain_fast)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        evaluate_targets(fresh_room(), NearestRecommender(), [0],
                         engine="turbo")


def _loop_continuity(recommendations):
    if recommendations.shape[0] < 2:
        return 1.0
    overlaps = []
    for t in range(1, recommendations.shape[0]):
        a, b = recommendations[t - 1], recommendations[t]
        union = int((a | b).sum())
        overlaps.append(1.0 if union == 0 else int((a & b).sum()) / union)
    return float(np.mean(overlaps))


def _result_with(recommendations):
    return EpisodeResult(after_utility=0.0, preference=0.0, presence=0.0,
                         occlusion_rate=0.0, runtime_ms=0.0,
                         per_step_after=np.zeros(1),
                         recommendations=recommendations)


class TestContinuity:
    def test_matches_loop_on_random_masks(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            masks = rng.random((rng.integers(1, 12), 9)) < 0.4
            assert _result_with(masks).continuity() == _loop_continuity(masks)

    def test_single_step_is_perfectly_stable(self):
        assert _result_with(np.ones((1, 4), dtype=bool)).continuity() == 1.0

    def test_empty_consecutive_sets_count_as_stable(self):
        masks = np.zeros((3, 5), dtype=bool)
        assert _result_with(masks).continuity() == 1.0

    def test_total_flicker_is_zero(self):
        masks = np.array([[True, False], [False, True]])
        assert _result_with(masks).continuity() == 0.0

    def test_known_value(self):
        masks = np.array([[1, 1, 0, 0],
                          [1, 0, 1, 0],
                          [1, 0, 1, 0]], dtype=bool)
        # Jaccard(step0, step1) = 1/3, Jaccard(step1, step2) = 1.
        assert _result_with(masks).continuity() == pytest.approx(2 / 3)
