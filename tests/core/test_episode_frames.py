"""Shared-frame caching: vectorised episode frames vs per-step builds."""

import numpy as np
import pytest

from repro.core import AfterProblem
from repro.core.scene import build_episode_frames, build_frame
from repro.datasets import RoomConfig, generate_room

FRAME_ARRAYS = ("preference", "presence", "preference_hat", "presence_hat",
                "distances", "forced", "blocked", "mask",
                "raw_preference", "raw_presence")


@pytest.fixture(scope="module")
def room():
    return generate_room("timik", RoomConfig(num_users=20, num_steps=6),
                         seed=5)


def assert_frames_equal(reference, fast):
    assert reference.t == fast.t
    assert reference.target == fast.target
    assert reference.graph is fast.graph
    for name in FRAME_ARRAYS:
        np.testing.assert_array_equal(getattr(reference, name),
                                      getattr(fast, name), err_msg=name)


@pytest.mark.parametrize("target", [0, 7, 13])
def test_build_episode_frames_matches_build_frame(room, target):
    graphs = room.dog(target).snapshots
    frames = build_episode_frames(target, graphs,
                                  room.preference[target],
                                  room.presence[target],
                                  room.interfaces_mr)
    assert len(frames) == room.horizon + 1
    for t, fast in enumerate(frames):
        reference = build_frame(t, target, graphs[t],
                                room.preference[target],
                                room.presence[target],
                                room.interfaces_mr)
        assert_frames_equal(reference, fast)


def test_problem_episode_frames_match_frame_at(room):
    problem = AfterProblem(room, 2)
    frames = problem.episode_frames()
    for t in range(problem.horizon + 1):
        reference = problem.frame_at(t)
        fast = frames[t]
        for name in FRAME_ARRAYS:
            np.testing.assert_array_equal(getattr(reference, name),
                                          getattr(fast, name), err_msg=name)


def test_problem_episode_frames_cached_per_problem(room):
    problem = AfterProblem(room, 4)
    assert problem.episode_frames() is problem.episode_frames()
    # Plain problems share the room-level cache.
    other = AfterProblem(room, 4)
    assert other.episode_frames() is problem.episode_frames()


def test_listed_problem_builds_private_frames(room):
    plain = AfterProblem(room, 4)
    listed = AfterProblem(room, 4, blocklist=[1])
    plain_frames = plain.episode_frames()
    listed_frames = listed.episode_frames()
    assert listed_frames is not plain_frames
    assert listed_frames[0].preference[1] == 0.0
    # The shared cache keeps the unpruned values.
    assert plain.episode_frames()[0].mask[1] != 0.0 or \
        plain_frames[0].blocked[1]


def test_prebuild_dogs_fills_the_cache_identically(room):
    cold = generate_room("timik", RoomConfig(num_users=20, num_steps=6),
                         seed=5)
    cold.prebuild_dogs([1, 3, 3, 8])
    assert set(cold._dog_cache) >= {1, 3, 8}
    for target in (1, 3, 8):
        expected = room.dog(target)
        built = cold.dog(target)
        assert len(built) == len(expected)
        for ref_graph, new_graph in zip(expected, built):
            np.testing.assert_array_equal(ref_graph.adjacency,
                                          new_graph.adjacency)
            np.testing.assert_array_equal(ref_graph.distances,
                                          new_graph.distances)
            np.testing.assert_array_equal(ref_graph.centers,
                                          new_graph.centers)
            np.testing.assert_array_equal(ref_graph.half_widths,
                                          new_graph.half_widths)


def test_clear_caches(room):
    fresh = generate_room("timik", RoomConfig(num_users=20, num_steps=6),
                          seed=5)
    fresh.prebuild_dogs([0])
    fresh.episode_frames(0)
    assert fresh._dog_cache and fresh._frame_cache
    fresh.clear_caches()
    assert not fresh._dog_cache and not fresh._frame_cache
