"""Regression tests for ``evaluate_targets`` edge cases.

Online callers (the serving layer, dashboards re-scoring a live room)
legitimately hit two degenerate inputs that the batch benchmarks never
produced: a room whose target list drained to zero, and a single-frame
(``T = 1``) episode.  Both used to crash on at least one engine/worker
combination — the empty list raised from the aggregation on the serial
path and from ``np.array_split`` on the fork path.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import evaluate_targets
from repro.core.evaluation import AggregateResult
from repro.crowd.simulator import Trajectory
from repro.datasets import RoomConfig, generate_timik_room
from repro.models.baselines import NearestRecommender

ENGINES = ("reference", "batched")


@pytest.fixture(scope="module")
def room():
    return generate_timik_room(RoomConfig(num_users=10, num_steps=4),
                               seed=2)


@pytest.fixture(scope="module")
def single_frame_room(room):
    """The same room truncated to one frame (horizon 0)."""
    return dataclasses.replace(
        room, name=room.name + "-t1",
        trajectory=Trajectory(room.trajectory.positions[:1]),
        _dog_cache={}, _frame_cache={})


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("workers", [None, 2])
def test_empty_target_list(room, engine, workers):
    result = evaluate_targets(room, NearestRecommender(), [],
                              engine=engine, workers=workers)
    assert result.episodes == []
    for metric in (result.after_utility, result.preference,
                   result.presence, result.occlusion_rate,
                   result.runtime_ms):
        assert np.isnan(metric)


def test_empty_aggregate_is_well_formed():
    empty = AggregateResult.empty()
    assert empty.episodes == []
    assert np.isnan(empty.after_utility)


@pytest.mark.parametrize("engine", ENGINES)
def test_single_frame_episode(single_frame_room, engine):
    result = evaluate_targets(single_frame_room, NearestRecommender(),
                              [0, 3, 7], engine=engine)
    assert len(result.episodes) == 3
    for episode in result.episodes:
        assert episode.recommendations.shape == (
            1, single_frame_room.num_users)
        assert np.isfinite(episode.after_utility)


def test_single_frame_episode_fork_parallel(single_frame_room):
    serial = evaluate_targets(single_frame_room, NearestRecommender(),
                              [0, 3, 7], engine="batched")
    forked = evaluate_targets(single_frame_room, NearestRecommender(),
                              [0, 3, 7], engine="batched", workers=2)
    assert serial.after_utility == forked.after_utility
    for left, right in zip(serial.episodes, forked.episodes):
        np.testing.assert_array_equal(left.recommendations,
                                      right.recommendations)


def test_single_frame_matches_across_engines(single_frame_room):
    reference = evaluate_targets(single_frame_room, NearestRecommender(),
                                 [0, 3, 7], engine="reference")
    batched = evaluate_targets(single_frame_room, NearestRecommender(),
                               [0, 3, 7], engine="batched")
    assert reference.after_utility == batched.after_utility
    assert reference.occlusion_rate == batched.occlusion_rate
