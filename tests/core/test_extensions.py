"""Tests for extension features: blocklist/allowlist and finite FoV."""

import math

import numpy as np
import pytest

from repro.core import AfterProblem, evaluate_episode
from repro.geometry import OcclusionGraphConverter
from repro.models import RandomRecommender, POSHGNN


class TestBlocklist:
    def test_blocked_user_masked_and_zeroed(self, small_room):
        problem = AfterProblem(small_room, target=0, blocklist={5, 6})
        frame = problem.frame_at(0)
        assert frame.mask[5] == 0.0
        assert frame.mask[6] == 0.0
        assert frame.preference[5] == 0.0
        assert frame.presence_hat[6] == 0.0

    def test_blocked_user_never_recommended_by_poshgnn(self, small_room):
        problem = AfterProblem(small_room, target=0, blocklist={5})
        model = POSHGNN(seed=0)
        model.reset(problem)
        for t in range(4):
            assert not model.recommend(problem.frame_at(t))[5]

    def test_blocked_user_earns_no_utility(self, small_room):
        """Even a recommender that ignores the mask earns nothing from a
        blocked user."""
        blocked = {1, 2, 3}
        problem = AfterProblem(small_room, target=0, blocklist=blocked)

        class OnlyBlocked(RandomRecommender):
            def recommend(self, frame):
                mask = np.zeros(frame.num_users, dtype=bool)
                mask[list(blocked)] = True
                return mask

        rec = OnlyBlocked(seed=0)
        result = evaluate_episode(problem, rec)
        assert result.after_utility == 0.0

    def test_allowlist_restricts_candidates(self, small_room):
        allowed = {7, 8, 9}
        problem = AfterProblem(small_room, target=0, allowlist=allowed)
        frame = problem.frame_at(0)
        candidates = set(frame.candidates().tolist())
        assert candidates <= allowed

    def test_blocklist_overrides_allowlist(self, small_room):
        problem = AfterProblem(small_room, target=0, allowlist={7, 8},
                               blocklist={8})
        frame = problem.frame_at(0)
        assert frame.mask[8] == 0.0

    def test_validation(self, small_room):
        with pytest.raises(ValueError):
            AfterProblem(small_room, target=0, blocklist={0})
        with pytest.raises(IndexError):
            AfterProblem(small_room, target=0, blocklist={999})

    def test_no_lists_is_default_mask(self, small_room):
        plain = AfterProblem(small_room, target=0)
        listed = AfterProblem(small_room, target=0, blocklist=set())
        np.testing.assert_allclose(plain.frame_at(0).mask,
                                   listed.frame_at(0).mask)


class TestFieldOfView:
    def scene(self):
        """Target at origin; user 1 east, user 2 west."""
        return np.array([[0.0, 0.0], [2.0, 0.0], [-2.0, 0.0],
                         [2.2, 0.05]])

    def test_full_circle_default(self):
        graph = OcclusionGraphConverter().convert(self.scene(), 0)
        assert graph.adjacency[1, 3]  # east pair overlaps

    def test_narrow_fov_excludes_behind(self):
        converter = OcclusionGraphConverter(fov=math.pi / 2)
        graph = converter.convert(self.scene(), 0, facing=0.0)  # facing east
        assert graph.adjacency[1, 3]        # in-cone pair still overlaps
        assert not graph.adjacency[2].any()  # west user out of the cone

    def test_facing_rotates_cone(self):
        converter = OcclusionGraphConverter(fov=math.pi / 2)
        graph = converter.convert(self.scene(), 0, facing=math.pi)  # west
        assert not graph.adjacency[1].any()
        assert not graph.adjacency[3].any()

    def test_fov_validation(self):
        with pytest.raises(ValueError):
            OcclusionGraphConverter(fov=0.0)
        with pytest.raises(ValueError):
            OcclusionGraphConverter(fov=7.0)

    def test_full_fov_equals_default(self):
        full = OcclusionGraphConverter(fov=2 * math.pi)
        default = OcclusionGraphConverter()
        scene = self.scene()
        np.testing.assert_array_equal(
            full.convert(scene, 0).adjacency,
            default.convert(scene, 0).adjacency)
