"""Tests for AfterProblem and Frame assembly (MIA preprocessing)."""

import numpy as np
import pytest

from repro.core import AfterProblem, build_frame, distance_normalise
from repro.geometry import OcclusionGraphConverter


class TestAfterProblem:
    def test_construction_defaults(self, small_room):
        problem = AfterProblem(small_room, target=0)
        assert problem.beta == 0.5
        assert problem.max_render == 8
        assert problem.horizon == 10

    def test_validation(self, small_room):
        with pytest.raises(IndexError):
            AfterProblem(small_room, target=999)
        with pytest.raises(ValueError):
            AfterProblem(small_room, target=0, beta=2.0)
        with pytest.raises(ValueError):
            AfterProblem(small_room, target=0, max_render=0)

    def test_frames_cover_horizon(self, small_room):
        problem = AfterProblem(small_room, target=1)
        frames = list(problem.frames())
        assert len(frames) == 11
        assert frames[0].t == 0
        assert frames[-1].t == 10

    def test_frame_at_bounds(self, small_room):
        problem = AfterProblem(small_room, target=1)
        with pytest.raises(IndexError):
            problem.frame_at(11)
        with pytest.raises(IndexError):
            problem.frame_at(-1)

    def test_adjacency_before_start(self, small_room):
        problem = AfterProblem(small_room, target=2)
        np.testing.assert_allclose(problem.adjacency(-1), 0.0)

    def test_delta_shape(self, small_room):
        problem = AfterProblem(small_room, target=2)
        assert problem.delta(0).shape == (25, 3)


class TestDistanceNormalise:
    def test_zero_distance_is_identity(self):
        out = distance_normalise(np.array([0.8]), np.array([0.0]))
        np.testing.assert_allclose(out, [0.8])

    def test_decreases_with_distance(self):
        out = distance_normalise(np.array([1.0, 1.0]), np.array([1.0, 3.0]))
        assert out[0] > out[1]

    def test_stays_in_unit_interval(self):
        rng = np.random.default_rng(0)
        utilities = rng.random(50)
        distances = rng.uniform(0, 20, 50)
        out = distance_normalise(utilities, distances)
        assert (out >= 0).all()
        assert (out <= 1).all()


class TestFrame:
    def make_frame(self):
        """Line scene: target 0; user1 MR near; user2 VR behind user1;
        user3 VR clear."""
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0], [0.0, 3.0]])
        graph = OcclusionGraphConverter().convert(positions, target=0)
        preference = np.array([0.0, 0.5, 0.9, 0.3])
        presence = np.array([0.0, 0.1, 0.8, 0.6])
        interfaces = np.array([True, True, False, False])
        return build_frame(0, 0, graph, preference, presence, interfaces)

    def test_forced_mask(self):
        frame = self.make_frame()
        np.testing.assert_array_equal(frame.forced, [False, True, False, False])

    def test_blocked_user_pruned(self):
        frame = self.make_frame()
        assert frame.blocked[2]          # behind physical user 1
        assert frame.mask[2] == 0.0
        assert frame.preference[2] == 0.0
        assert frame.presence[2] == 0.0

    def test_target_masked(self):
        frame = self.make_frame()
        assert frame.mask[0] == 0.0

    def test_candidates_excludes_target_and_blocked(self):
        frame = self.make_frame()
        np.testing.assert_array_equal(frame.candidates(), [1, 3])

    def test_features_shape_and_range(self):
        frame = self.make_frame()
        features = frame.features()
        assert features.shape == (4, 4)
        assert features.min() >= 0.0
        assert features.max() <= 1.0

    def test_features_interface_channel(self):
        frame = self.make_frame()
        np.testing.assert_array_equal(frame.features()[:, 3], [1, 1, 0, 0])

    def test_normalised_utilities_reflect_distance(self):
        frame = self.make_frame()
        # user3: p=0.3 at distance 3, scale=max distance 4
        # -> 0.3 / (1 + (3/4)^2) = 0.192
        assert frame.preference_hat[3] == pytest.approx(0.3 / (1 + 0.75 ** 2))

    def test_vr_target_has_no_forced_or_blocked(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]])
        graph = OcclusionGraphConverter().convert(positions, target=0)
        frame = build_frame(0, 0, graph, np.ones(3) * 0.5, np.ones(3) * 0.5,
                            np.array([False, True, True]))
        assert not frame.forced.any()
        assert not frame.blocked.any()
