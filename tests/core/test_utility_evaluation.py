"""Tests for AFTER utility (Def. 2), recommender API, evaluation harness."""

import numpy as np
import pytest

from repro.core import (
    AfterProblem,
    AggregateResult,
    Recommender,
    StepUtility,
    UtilityAccumulator,
    evaluate_episode,
    evaluate_targets,
    mean_and_std,
    paired_p_value,
    pearson,
    scores_to_recommendation,
    spearman,
    step_utility,
    top_k_mask,
)


class TestStepUtility:
    def test_after_weighting(self):
        step = StepUtility(preference=2.0, presence=4.0)
        assert step.after(0.5) == pytest.approx(3.0)
        assert step.after(0.0) == pytest.approx(2.0)
        assert step.after(1.0) == pytest.approx(4.0)

    def test_only_visible_rendered_count(self):
        p = np.array([0.0, 0.5, 0.9])
        s = np.array([0.0, 0.2, 0.8])
        rendered = np.array([False, True, True])
        visible_now = np.array([False, True, False])   # user 2 occluded
        visible_prev = np.array([False, True, True])
        step = step_utility(p, s, visible_now, visible_prev, rendered)
        assert step.preference == pytest.approx(0.5)
        assert step.presence == pytest.approx(0.2)

    def test_presence_needs_consecutive_visibility(self):
        p = np.array([0.0, 0.5])
        s = np.array([0.0, 0.9])
        rendered = np.array([False, True])
        visible_now = np.array([False, True])
        visible_prev = np.array([False, False])  # first appearance
        step = step_utility(p, s, visible_now, visible_prev, rendered)
        assert step.presence == 0.0
        assert step.preference == pytest.approx(0.5)

    def test_forced_unrecommended_users_do_not_score(self):
        p = np.array([0.0, 0.7])
        s = np.array([0.0, 0.7])
        rendered = np.array([False, False])
        visible_now = np.array([False, True])  # physically visible
        step = step_utility(p, s, visible_now, visible_now, rendered)
        assert step.preference == 0.0
        assert step.presence == 0.0


class TestUtilityAccumulator:
    def test_totals(self):
        acc = UtilityAccumulator(beta=0.5)
        acc.add(StepUtility(1.0, 3.0))
        acc.add(StepUtility(2.0, 1.0))
        assert acc.total_preference == pytest.approx(3.0)
        assert acc.total_presence == pytest.approx(4.0)
        assert acc.total_after == pytest.approx(3.5)
        assert acc.num_steps == 2

    def test_per_step_after(self):
        acc = UtilityAccumulator(beta=0.0)
        acc.add(StepUtility(1.0, 9.0))
        np.testing.assert_allclose(acc.per_step_after(), [1.0])

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            UtilityAccumulator(beta=-0.1)


class TestTopKMask:
    def test_selects_largest(self):
        mask = top_k_mask(np.array([0.1, 0.9, 0.5]), k=2)
        np.testing.assert_array_equal(mask, [False, True, True])

    def test_respects_eligibility(self):
        mask = top_k_mask(np.array([0.9, 0.8, 0.7]), k=2,
                          eligible=np.array([False, True, True]))
        np.testing.assert_array_equal(mask, [False, True, True])

    def test_never_selects_nonpositive(self):
        mask = top_k_mask(np.array([-1.0, 0.0, 0.3]), k=3)
        np.testing.assert_array_equal(mask, [False, False, True])

    def test_k_zero(self):
        assert not top_k_mask(np.ones(3), k=0).any()


class TestScoresToRecommendation:
    def test_threshold_filters(self, small_room):
        problem = AfterProblem(small_room, target=0)
        frame = problem.frame_at(0)
        scores = np.full(25, 0.4)
        rec = scores_to_recommendation(scores, frame, max_render=8,
                                       threshold=0.5)
        assert not rec.any()

    def test_budget_respected(self, small_room):
        problem = AfterProblem(small_room, target=0)
        frame = problem.frame_at(0)
        scores = np.linspace(0.1, 1.0, 25)
        rec = scores_to_recommendation(scores, frame, max_render=5)
        assert rec.sum() <= 5

    def test_masked_users_never_recommended(self, small_room):
        problem = AfterProblem(small_room, target=0)
        frame = problem.frame_at(0)
        rec = scores_to_recommendation(np.ones(25), frame, max_render=25)
        assert not rec[frame.mask <= 0].any()


class EverythingRecommender(Recommender):
    """Renders every candidate (the paper's 'Original' behaviour)."""

    name = "everything"

    def recommend(self, frame):
        return frame.mask > 0


class NothingRecommender(Recommender):
    name = "nothing"

    def recommend(self, frame):
        return np.zeros(frame.num_users, dtype=bool)


class TestEvaluateEpisode:
    def test_nothing_scores_zero(self, small_room):
        problem = AfterProblem(small_room, target=0)
        result = evaluate_episode(problem, NothingRecommender())
        assert result.after_utility == 0.0
        assert result.occlusion_rate == 0.0

    def test_single_clear_user_scores_positive(self, small_room):
        class OneUser(Recommender):
            name = "one"

            def recommend(self, frame):
                mask = np.zeros(frame.num_users, dtype=bool)
                candidates = frame.candidates()
                if candidates.size:
                    mask[candidates[0]] = True
                return mask

        # A VR target renders a single candidate: no avatar clutter, so
        # the user is visible whenever not behind a physical person.
        vr_target = int(np.nonzero(~small_room.interfaces_mr)[0][0])
        problem = AfterProblem(small_room, target=vr_target)
        result = evaluate_episode(problem, OneUser())
        assert result.after_utility > 0.0
        assert result.preference > 0.0

    def test_render_all_is_heavily_occluded(self, small_room):
        problem = AfterProblem(small_room, target=0)
        result = evaluate_episode(problem, EverythingRecommender())
        assert result.occlusion_rate > 0.5

    def test_after_is_weighted_combination(self, small_room):
        problem = AfterProblem(small_room, target=3, beta=0.3)
        result = evaluate_episode(problem, EverythingRecommender())
        assert result.after_utility == pytest.approx(
            0.7 * result.preference + 0.3 * result.presence)

    def test_recommendation_matrix_shape(self, small_room):
        problem = AfterProblem(small_room, target=0)
        result = evaluate_episode(problem, EverythingRecommender())
        assert result.recommendations.shape == (11, 25)

    def test_target_never_recommended(self, small_room):
        problem = AfterProblem(small_room, target=4)
        result = evaluate_episode(problem, EverythingRecommender())
        assert not result.recommendations[:, 4].any()

    def test_runtime_measured(self, small_room):
        problem = AfterProblem(small_room, target=0)
        result = evaluate_episode(problem, EverythingRecommender())
        assert result.runtime_ms >= 0.0

    def test_continuity_stable_for_everything(self, small_room):
        problem = AfterProblem(small_room, target=0)
        result = evaluate_episode(problem, EverythingRecommender())
        # Candidate sets barely change step to step.
        assert result.continuity() > 0.5

    def test_per_step_series_length(self, small_room):
        problem = AfterProblem(small_room, target=0)
        result = evaluate_episode(problem, EverythingRecommender())
        assert result.per_step_after.shape == (11,)


class TestEvaluateTargets:
    def test_aggregation(self, small_room):
        result = evaluate_targets(small_room, EverythingRecommender(),
                                  targets=[0, 1, 2])
        assert isinstance(result, AggregateResult)
        assert len(result.episodes) == 3
        assert result.after_utilities().shape == (3,)

    def test_empty_aggregate_raises(self):
        with pytest.raises(ValueError):
            AggregateResult.from_episodes([])


class TestStatistics:
    def test_paired_p_value_identical(self):
        assert paired_p_value([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_paired_p_value_dominating(self):
        p = paired_p_value([5.0, 6.0, 7.0, 8.0], [1.0, 2.0, 3.0, 4.0])
        assert p < 0.05

    def test_paired_p_value_validates(self):
        with pytest.raises(ValueError):
            paired_p_value([1.0], [1.0, 2.0])

    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_constant_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_monotone(self):
        assert spearman([1, 2, 3], [10, 100, 1000]) == pytest.approx(1.0)

    def test_spearman_constant_is_zero(self):
        assert spearman([2, 2, 2], [1, 2, 3]) == 0.0

    def test_mean_and_std(self):
        mean, std = mean_and_std([2.0, 4.0])
        assert mean == 3.0
        assert std == 1.0
