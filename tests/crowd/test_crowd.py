"""Tests for the crowd-simulation substrate."""

import numpy as np
import pytest

from repro.crowd import (
    AgentStates,
    ConversationGroups,
    CrowdSimulator,
    RVOModel,
    SocialForceModel,
    Trajectory,
    WaypointBehavior,
)
from repro.geometry import Room


def make_agents(count=10, seed=0, side=10.0):
    rng = np.random.default_rng(seed)
    room = Room.square(side)
    return AgentStates.spawn(room.sample_positions(count, rng), rng), room, rng


class TestAgentStates:
    def test_spawn_shapes(self):
        agents, _, _ = make_agents(7)
        assert agents.count == 7
        assert agents.velocities.shape == (7, 2)
        np.testing.assert_array_equal(agents.group_ids, -1)

    def test_spawn_starts_stationary_at_goal(self):
        agents, _, _ = make_agents(5)
        np.testing.assert_allclose(agents.velocities, 0.0)
        assert agents.at_goal().all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AgentStates(
                positions=np.zeros((3, 2)),
                velocities=np.zeros((2, 2)),
                goals=np.zeros((3, 2)),
                max_speeds=np.ones(3),
                radii=np.full(3, 0.25),
            )

    def test_preferred_velocity_points_at_goal(self):
        agents, _, _ = make_agents(2)
        agents.goals[0] = agents.positions[0] + np.array([5.0, 0.0])
        pref = agents.preferred_velocities()
        assert pref[0, 0] > 0
        assert pref[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_preferred_velocity_capped_at_max_speed(self):
        agents, _, _ = make_agents(3)
        agents.goals = agents.positions + 100.0
        speeds = np.linalg.norm(agents.preferred_velocities(), axis=1)
        assert (speeds <= agents.max_speeds + 1e-9).all()

    def test_preferred_velocity_slows_near_goal(self):
        agents, _, _ = make_agents(1)
        agents.goals[0] = agents.positions[0] + np.array([0.05, 0.0])
        speed = np.linalg.norm(agents.preferred_velocities()[0])
        assert speed < agents.max_speeds[0]


class TestSocialForce:
    def test_agents_move_toward_goals(self):
        agents, room, _ = make_agents(1)
        agents.goals[0] = agents.positions[0] + np.array([3.0, 0.0])
        start = agents.positions[0].copy()
        model = SocialForceModel()
        for _ in range(20):
            model.step(agents, room, dt=0.25)
        assert agents.positions[0, 0] > start[0]

    def test_speed_limit_respected(self):
        agents, room, _ = make_agents(20, seed=1)
        agents.goals = room.sample_positions(20, np.random.default_rng(2))
        model = SocialForceModel()
        for _ in range(30):
            model.step(agents, room, dt=0.25)
            speeds = np.linalg.norm(agents.velocities, axis=1)
            assert (speeds <= agents.max_speeds + 1e-9).all()

    def test_positions_stay_in_room(self):
        agents, room, _ = make_agents(30, seed=3)
        agents.goals = room.sample_positions(30, np.random.default_rng(4))
        model = SocialForceModel()
        for _ in range(40):
            model.step(agents, room, dt=0.5)
        assert room.contains(agents.positions).all()

    def test_two_agents_repel_at_contact(self):
        room = Room.square(10.0)
        rng = np.random.default_rng(0)
        agents = AgentStates.spawn(
            np.array([[5.0, 5.0], [5.3, 5.0]]), rng)
        agents.goals = agents.positions.copy()  # no drive force
        model = SocialForceModel()
        model.step(agents, room, dt=0.25)
        # They should push apart along x.
        gap = agents.positions[1, 0] - agents.positions[0, 0]
        assert gap > 0.3


class TestRVO:
    def test_validates_samples(self):
        with pytest.raises(ValueError):
            RVOModel(num_samples=2)

    def test_agent_reaches_goal_unobstructed(self):
        agents, room, _ = make_agents(1)
        agents.positions[0] = [2.0, 5.0]
        agents.goals[0] = [8.0, 5.0]
        agents.max_speeds[:] = 1.0
        model = RVOModel(seed=0)
        for _ in range(60):
            model.step(agents, room, dt=0.25)
        assert np.linalg.norm(agents.positions[0] - agents.goals[0]) < 0.5

    def test_head_on_agents_avoid_collision(self):
        room = Room.square(10.0)
        rng = np.random.default_rng(0)
        agents = AgentStates.spawn(
            np.array([[2.0, 5.0], [8.0, 5.0]]), rng)
        agents.max_speeds[:] = 1.0
        agents.goals = np.array([[8.0, 5.0], [2.0, 5.0]])
        model = RVOModel(seed=1)
        min_gap = np.inf
        for _ in range(80):
            model.step(agents, room, dt=0.25)
            gap = np.linalg.norm(agents.positions[0] - agents.positions[1])
            min_gap = min(min_gap, gap)
        # Bodies (radius 0.25 each) should not interpenetrate badly.
        assert min_gap > 0.3

    def test_positions_stay_in_room(self):
        agents, room, _ = make_agents(6, seed=5, side=6.0)
        agents.goals = room.sample_positions(6, np.random.default_rng(6))
        model = RVOModel(seed=2)
        for _ in range(30):
            model.step(agents, room, dt=0.5)
        assert room.contains(agents.positions).all()


class TestBehaviours:
    def test_waypoints_refresh_after_dwell(self):
        agents, room, rng = make_agents(5)
        behavior = WaypointBehavior(room, rng, dwell_range=(0.1, 0.2))
        behavior.initialise(agents)
        agents.positions = agents.goals.copy()  # instantly arrive
        old_goals = agents.goals.copy()
        for _ in range(10):
            behavior.update(agents, dt=0.5)
        assert not np.allclose(old_goals, agents.goals)

    def test_waypoints_keep_goal_until_arrival(self):
        agents, room, rng = make_agents(5)
        behavior = WaypointBehavior(room, rng)
        behavior.initialise(agents)
        agents.positions = agents.goals + 5.0  # far from goals
        agents.positions = room.clamp(agents.positions)
        far = ~agents.at_goal(0.25)
        old_goals = agents.goals.copy()
        behavior.update(agents, dt=0.5)
        np.testing.assert_allclose(agents.goals[far], old_goals[far])

    def test_groups_assign_members(self):
        agents, room, rng = make_agents(20)
        groups = ConversationGroups(room, rng, group_fraction=0.5)
        groups.initialise(agents)
        grouped = (agents.group_ids >= 0).sum()
        assert 5 <= grouped <= 12

    def test_group_members_share_anchor_vicinity(self):
        agents, room, rng = make_agents(20, seed=2)
        groups = ConversationGroups(room, rng, group_fraction=0.8,
                                    circle_radius=0.8)
        groups.initialise(agents)
        for gid in np.unique(agents.group_ids[agents.group_ids >= 0]):
            goals = agents.goals[agents.group_ids == gid]
            spread = np.linalg.norm(goals - goals.mean(axis=0), axis=1)
            assert (spread <= 0.9).all()

    def test_zero_fraction_leaves_all_ungrouped(self):
        agents, room, rng = make_agents(10)
        groups = ConversationGroups(room, rng, group_fraction=0.0)
        groups.initialise(agents)
        assert (agents.group_ids == -1).all()

    def test_invalid_fraction(self):
        _, room, rng = make_agents(2)
        with pytest.raises(ValueError):
            ConversationGroups(room, rng, group_fraction=1.5)


class TestTrajectory:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((5, 3)))

    def test_accessors(self):
        positions = np.zeros((4, 3, 2))
        traj = Trajectory(positions)
        assert len(traj) == 4
        assert traj.horizon == 3
        assert traj.num_agents == 3
        assert traj[2].shape == (3, 2)

    def test_displacements(self):
        positions = np.zeros((3, 1, 2))
        positions[1, 0] = [1.0, 0.0]
        positions[2, 0] = [1.0, 1.0]
        traj = Trajectory(positions)
        np.testing.assert_allclose(traj.step_displacements()[:, 0], [1.0, 1.0])
        assert traj.max_step_displacement() == 1.0


class TestCrowdSimulator:
    def test_output_shape(self):
        sim = CrowdSimulator(Room.square(10.0), seed=1)
        traj = sim.simulate(num_agents=25, num_steps=10)
        assert traj.positions.shape == (11, 25, 2)

    def test_deterministic_under_seed(self):
        room = Room.square(10.0)
        a = CrowdSimulator(room, seed=7).simulate(10, 5)
        b = CrowdSimulator(room, seed=7).simulate(10, 5)
        np.testing.assert_allclose(a.positions, b.positions)

    def test_different_seeds_differ(self):
        room = Room.square(10.0)
        a = CrowdSimulator(room, seed=1).simulate(10, 5)
        b = CrowdSimulator(room, seed=2).simulate(10, 5)
        assert not np.allclose(a.positions, b.positions)

    def test_all_frames_inside_room(self):
        room = Room.square(8.0)
        traj = CrowdSimulator(room, seed=3).simulate(30, 20)
        flat = traj.positions.reshape(-1, 2)
        assert room.contains(flat).all()

    def test_motion_is_smooth(self):
        """Occlusion graphs must change gradually => small per-step moves."""
        room = Room.square(10.0)
        sim = CrowdSimulator(room, dt=0.5, seed=4)
        traj = sim.simulate(40, 20)
        # At most max_speed * dt with a tolerance: ~1.4 * 0.5.
        assert traj.max_step_displacement() < 1.0

    def test_rvo_model_selectable(self):
        room = Room.square(6.0)
        traj = CrowdSimulator(room, model="rvo", seed=5).simulate(8, 5)
        assert traj.positions.shape == (6, 8, 2)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            CrowdSimulator(Room.square(5.0), model="orca9000")

    def test_invalid_simulate_args(self):
        sim = CrowdSimulator(Room.square(5.0))
        with pytest.raises(ValueError):
            sim.simulate(0, 5)
        with pytest.raises(ValueError):
            sim.simulate(3, -1)
