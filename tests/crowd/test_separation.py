"""Tests for RVO2-style non-penetration enforcement."""

import numpy as np
import pytest

from repro.crowd import AgentStates, CrowdSimulator
from repro.crowd.social_force import enforce_separation
from repro.geometry import Room


def overlapping_agents():
    rng = np.random.default_rng(0)
    positions = np.array([[5.0, 5.0], [5.1, 5.0], [8.0, 8.0]])
    return AgentStates.spawn(positions, rng), Room.square(10.0)


class TestEnforceSeparation:
    def test_overlapping_pair_separated(self):
        agents, room = overlapping_agents()
        enforce_separation(agents, room, iterations=5)
        gap = np.linalg.norm(agents.positions[0] - agents.positions[1])
        assert gap >= 0.5 - 0.05  # contact distance = 2 * 0.25

    def test_nonoverlapping_agents_untouched(self):
        agents, room = overlapping_agents()
        before = agents.positions[2].copy()
        enforce_separation(agents, room, iterations=5)
        np.testing.assert_allclose(agents.positions[2], before)

    def test_positions_stay_in_room(self):
        rng = np.random.default_rng(1)
        positions = np.full((4, 2), 0.05)  # all piled in a corner
        agents = AgentStates.spawn(positions, rng)
        room = Room.square(6.0)
        enforce_separation(agents, room, iterations=8)
        assert room.contains(agents.positions).all()

    def test_idempotent_on_separated_crowd(self):
        agents, room = overlapping_agents()
        enforce_separation(agents, room, iterations=8)
        after_first = agents.positions.copy()
        enforce_separation(agents, room, iterations=8)
        np.testing.assert_allclose(agents.positions, after_first, atol=1e-9)


class TestSimulatedCrowdSeparation:
    def test_simulated_crowd_respects_bodies(self):
        """In a feasible-density room, simulated users rarely interpenetrate."""
        room = Room.square(6.0)   # 36 m^2 for 40 agents: feasible
        trajectory = CrowdSimulator(room, seed=0).simulate(40, 10)
        final = trajectory[10]
        deltas = final[:, None, :] - final[None, :, :]
        distances = np.linalg.norm(deltas, axis=-1)
        np.fill_diagonal(distances, np.inf)
        # Allow small residual overlap from the last integration step.
        assert distances.min() > 0.4

    def test_min_distance_bounds_arc_width(self):
        """Non-penetration caps occlusion arcs below ~90 degrees for
        other users' views (the property that keeps Nearest viable)."""
        from repro.geometry import OcclusionGraphConverter
        room = Room.square(6.0)
        trajectory = CrowdSimulator(room, seed=1).simulate(30, 5)
        graph = OcclusionGraphConverter().convert(trajectory[5], 0)
        # Every non-target half-width strictly below pi/2 means no user
        # is inside another's body.
        others = np.arange(30) != 0
        assert (graph.half_widths[others] < np.pi / 2).all()
