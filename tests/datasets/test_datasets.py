"""Tests for dataset generators and the ConferenceRoom container."""

import numpy as np
import pytest

from repro.datasets import (
    ConferenceRoom,
    RoomConfig,
    assign_interfaces,
    default_config,
    generate_episodes,
    generate_hubs_room,
    generate_room,
    generate_smm_room,
    generate_timik_room,
    hubs_config,
    train_test_split,
)

SMALL = RoomConfig(num_users=30, num_steps=8)


class TestRoomConfig:
    def test_defaults_match_paper(self):
        config = RoomConfig()
        assert config.num_users == 200
        assert config.num_steps == 100
        assert config.vr_fraction == 0.5
        # Maximum feasible crowding: 0.3 m^2 per person (see docstring).
        assert config.effective_room_side**2 == pytest.approx(60.0, rel=0.01)

    def test_room_side_floor_is_papers_ten_square_meters(self):
        config = RoomConfig(num_users=10, num_steps=1)
        assert config.effective_room_side**2 == pytest.approx(10.0, rel=0.01)

    def test_explicit_room_side_pins_geometry(self):
        config = RoomConfig(num_users=50, num_steps=1, room_side=7.5)
        assert config.effective_room_side == 7.5

    @pytest.mark.parametrize("kwargs", [
        {"num_users": 1},
        {"num_steps": 0},
        {"vr_fraction": 1.5},
        {"room_side": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RoomConfig(**kwargs)


class TestAssignInterfaces:
    def test_exact_vr_count(self):
        mask = assign_interfaces(100, 0.25, np.random.default_rng(0))
        assert (~mask).sum() == 25

    def test_all_vr(self):
        mask = assign_interfaces(10, 1.0, np.random.default_rng(0))
        assert not mask.any()

    def test_all_mr(self):
        mask = assign_interfaces(10, 0.0, np.random.default_rng(0))
        assert mask.all()


@pytest.mark.parametrize("generator,name", [
    (generate_timik_room, "timik"),
    (generate_smm_room, "smm"),
])
class TestLargeRoomGenerators:
    def test_basic_shape(self, generator, name):
        room = generator(SMALL, seed=0)
        assert room.name == name
        assert room.num_users == 30
        assert room.horizon == 8
        assert room.trajectory.positions.shape == (9, 30, 2)

    def test_utilities_in_range(self, generator, name):
        room = generator(SMALL, seed=1)
        for matrix in (room.preference, room.presence):
            assert matrix.min() >= 0.0
            assert matrix.max() <= 1.0
            np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_deterministic_under_seed(self, generator, name):
        a = generator(SMALL, seed=5)
        b = generator(SMALL, seed=5)
        np.testing.assert_allclose(a.trajectory.positions,
                                   b.trajectory.positions)
        np.testing.assert_allclose(a.preference, b.preference)
        np.testing.assert_array_equal(a.interfaces_mr, b.interfaces_mr)

    def test_positions_inside_room(self, generator, name):
        room = generator(SMALL, seed=2)
        flat = room.trajectory.positions.reshape(-1, 2)
        assert room.room.contains(flat).all()


class TestHubsGenerator:
    def test_defaults_are_small(self):
        config = hubs_config()
        assert config.num_users == 24
        assert config.room_side == 6.0

    def test_generation(self):
        room = generate_hubs_room(hubs_config(num_users=12, num_steps=5),
                                  seed=0)
        assert room.name == "hubs"
        assert room.num_users == 12

    def test_social_structure_is_small_world(self):
        room = generate_hubs_room(hubs_config(num_users=16, num_steps=3),
                                  seed=1)
        degrees = room.social.degrees()
        assert degrees.mean() > 1.0  # well-connected workshop


class TestDatasetDifferences:
    def test_smm_denser_than_timik(self):
        config = RoomConfig(num_users=60, num_steps=3)
        timik = generate_timik_room(config, seed=3)
        smm = generate_smm_room(config, seed=3)
        assert smm.social.num_edges > timik.social.num_edges


class TestRegistry:
    def test_generate_room_dispatch(self):
        room = generate_room("timik", SMALL, seed=0)
        assert room.name == "timik"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            generate_room("secondlife")

    def test_default_config_hubs_differs(self):
        assert default_config("hubs").num_users == 24
        assert default_config("timik").num_users == 200

    def test_generate_episodes_distinct_seeds(self):
        episodes = generate_episodes("timik", 2, SMALL, base_seed=0)
        assert len(episodes) == 2
        assert not np.allclose(episodes[0].trajectory.positions,
                               episodes[1].trajectory.positions)

    def test_generate_episodes_validates_count(self):
        with pytest.raises(ValueError):
            generate_episodes("timik", 0, SMALL)

    def test_train_test_split_80_20(self):
        episodes = list(range(10))
        train, test = train_test_split(episodes, 0.8)
        assert len(train) == 8
        assert len(test) == 2

    def test_train_test_split_small_lists(self):
        train, test = train_test_split([1, 2], 0.8)
        assert len(train) == 1
        assert len(test) == 1

    def test_train_test_split_validates(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2], 1.0)


class TestConferenceRoom:
    def test_validation_social_size(self):
        room = generate_timik_room(SMALL, seed=0)
        small_social = generate_timik_room(
            RoomConfig(num_users=10, num_steps=2), seed=0).social
        with pytest.raises(ValueError):
            ConferenceRoom(
                name="broken", trajectory=room.trajectory,
                social=small_social, preference=room.preference,
                presence=room.presence, interfaces_mr=room.interfaces_mr,
                room=room.room)

    def test_validation_utility_range(self):
        room = generate_timik_room(SMALL, seed=0)
        with pytest.raises(ValueError):
            ConferenceRoom(
                name="broken", trajectory=room.trajectory,
                social=room.social, preference=room.preference * 5,
                presence=room.presence, interfaces_mr=room.interfaces_mr,
                room=room.room)

    def test_mr_vr_partition(self):
        room = generate_timik_room(SMALL, seed=0)
        assert set(room.mr_users) | set(room.vr_users) == set(range(30))
        assert not set(room.mr_users) & set(room.vr_users)

    def test_dog_cached(self):
        room = generate_timik_room(SMALL, seed=0)
        assert room.dog(3) is room.dog(3)

    def test_dog_shape(self):
        room = generate_timik_room(SMALL, seed=0)
        dog = room.dog(0)
        assert len(dog) == 9
        assert dog.num_users == 30

    def test_sample_targets_distinct(self):
        room = generate_timik_room(SMALL, seed=0)
        targets = room.sample_targets(10, np.random.default_rng(0))
        assert len(set(targets.tolist())) == 10
