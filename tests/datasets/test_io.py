"""Tests for room serialization (save_room / load_room)."""

import numpy as np
import pytest

from repro.core import AfterProblem, evaluate_episode
from repro.datasets import RoomConfig, generate_timik_room, load_room, \
    save_room
from repro.models import NearestRecommender


@pytest.fixture(scope="module")
def room():
    return generate_timik_room(RoomConfig(num_users=15, num_steps=5), seed=3)


class TestRoundtrip:
    def test_all_fields_preserved(self, room, tmp_path):
        path = tmp_path / "room.npz"
        save_room(room, path)
        loaded = load_room(path)
        assert loaded.name == room.name
        assert loaded.seed == room.seed
        assert loaded.body_radius == room.body_radius
        assert loaded.room.width == room.room.width
        np.testing.assert_allclose(loaded.trajectory.positions,
                                   room.trajectory.positions)
        np.testing.assert_array_equal(loaded.social.adjacency,
                                      room.social.adjacency)
        np.testing.assert_allclose(loaded.social.tie_strengths,
                                   room.social.tie_strengths)
        np.testing.assert_allclose(loaded.preference, room.preference)
        np.testing.assert_allclose(loaded.presence, room.presence)
        np.testing.assert_array_equal(loaded.interfaces_mr,
                                      room.interfaces_mr)

    def test_loaded_room_evaluates_identically(self, room, tmp_path):
        path = tmp_path / "room.npz"
        save_room(room, path)
        loaded = load_room(path)
        original = evaluate_episode(AfterProblem(room, 0),
                                    NearestRecommender())
        reloaded = evaluate_episode(AfterProblem(loaded, 0),
                                    NearestRecommender())
        assert original.after_utility == pytest.approx(
            reloaded.after_utility)
        np.testing.assert_array_equal(original.recommendations,
                                      reloaded.recommendations)

    def test_version_check(self, room, tmp_path):
        path = tmp_path / "room.npz"
        save_room(room, path)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.array(999)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_room(path)

    def test_dog_recomputable_after_load(self, room, tmp_path):
        path = tmp_path / "room.npz"
        save_room(room, path)
        loaded = load_room(path)
        dog = loaded.dog(0)
        assert dog.num_users == room.num_users
        np.testing.assert_array_equal(dog.adjacency(0),
                                      room.dog(0).adjacency(0))
