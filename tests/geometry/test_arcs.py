"""Unit and property tests for repro.geometry.arcs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Arc,
    angular_separation,
    arc_intersection_matrix,
    arc_of_user,
    arcs_intersect,
)

ANGLES = st.floats(min_value=-math.pi, max_value=math.pi,
                   allow_nan=False, allow_infinity=False)
HALF_WIDTHS = st.floats(min_value=0.0, max_value=math.pi,
                        allow_nan=False, allow_infinity=False)


class TestArc:
    def test_rejects_invalid_half_width(self):
        with pytest.raises(ValueError):
            Arc(center=0.0, half_width=-0.1)
        with pytest.raises(ValueError):
            Arc(center=0.0, half_width=math.pi + 0.1)

    def test_width(self):
        assert Arc(0.0, 0.3).width == pytest.approx(0.6)

    def test_contains_center(self):
        assert Arc(1.0, 0.2).contains(1.0)

    def test_contains_wraparound(self):
        arc = Arc(center=math.pi, half_width=0.3)
        assert arc.contains(-math.pi + 0.1)  # other side of the seam
        assert not arc.contains(0.0)

    def test_endpoints_normalised(self):
        start, end = Arc(center=math.pi - 0.1, half_width=0.3).endpoints()
        assert -math.pi <= start <= math.pi
        assert -math.pi <= end <= math.pi

    def test_intersects_overlapping(self):
        assert Arc(0.0, 0.5).intersects(Arc(0.8, 0.4))

    def test_intersects_disjoint(self):
        assert not Arc(0.0, 0.2).intersects(Arc(1.0, 0.2))

    def test_intersects_across_seam(self):
        assert Arc(math.pi - 0.05, 0.2).intersects(Arc(-math.pi + 0.05, 0.2))


class TestAngularSeparation:
    def test_zero_for_equal(self):
        assert angular_separation(1.3, 1.3) == 0.0

    def test_wraps_across_seam(self):
        assert angular_separation(math.pi - 0.1, -math.pi + 0.1) == pytest.approx(0.2)

    def test_max_is_pi(self):
        assert angular_separation(0.0, math.pi) == pytest.approx(math.pi)

    def test_vectorised(self):
        out = angular_separation(np.array([0.0, math.pi]), np.array([0.1, -math.pi]))
        np.testing.assert_allclose(out, [0.1, 0.0], atol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(ANGLES, ANGLES)
    def test_symmetric_and_bounded(self, a, b):
        sep = float(angular_separation(a, b))
        assert 0.0 <= sep <= math.pi + 1e-9
        assert sep == pytest.approx(float(angular_separation(b, a)))


class TestArcOfUser:
    def test_center_points_at_user(self):
        arc = arc_of_user(np.zeros(2), np.array([0.0, 2.0]), body_radius=0.25)
        assert arc.center == pytest.approx(math.pi / 2)

    def test_half_width_shrinks_with_distance(self):
        near = arc_of_user(np.zeros(2), np.array([1.0, 0.0]), 0.25)
        far = arc_of_user(np.zeros(2), np.array([5.0, 0.0]), 0.25)
        assert near.half_width > far.half_width

    def test_half_width_formula(self):
        arc = arc_of_user(np.zeros(2), np.array([2.0, 0.0]), 0.5)
        assert arc.half_width == pytest.approx(math.asin(0.25))

    def test_contact_distance_gives_half_pi(self):
        arc = arc_of_user(np.zeros(2), np.array([0.1, 0.0]), body_radius=0.25)
        assert arc.half_width == pytest.approx(math.pi / 2)


class TestIntersectionMatrix:
    def test_symmetric_false_diagonal(self):
        rng = np.random.default_rng(0)
        centers = rng.uniform(-math.pi, math.pi, 12)
        halves = rng.uniform(0.01, 0.5, 12)
        mat = arcs_intersect(centers, halves)
        assert not mat.diagonal().any()
        np.testing.assert_array_equal(mat, mat.T)

    def test_matches_pairwise_arc_objects(self):
        rng = np.random.default_rng(1)
        arcs = [Arc(float(c), float(h)) for c, h in
                zip(rng.uniform(-math.pi, math.pi, 8), rng.uniform(0.01, 0.8, 8))]
        mat = arc_intersection_matrix(arcs)
        for i in range(8):
            for j in range(8):
                if i != j:
                    assert mat[i, j] == arcs[i].intersects(arcs[j])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(ANGLES, HALF_WIDTHS), min_size=2, max_size=8))
    def test_rotation_invariance(self, params):
        """Rotating every arc by the same offset preserves intersections
        (away from exact-touch boundaries, where float rounding may flip
        the closed-interval predicate)."""
        centers = np.array([p[0] for p in params])
        halves = np.array([p[1] for p in params])
        base = arcs_intersect(centers, halves)
        rotated = arcs_intersect(centers + 1.234, halves)
        separation = angular_separation(centers[:, None], centers[None, :])
        margin = np.abs(separation - (halves[:, None] + halves[None, :]))
        decisive = margin > 1e-9
        np.testing.assert_array_equal(base[decisive], rotated[decisive])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(ANGLES, HALF_WIDTHS), min_size=2, max_size=8))
    def test_growing_arcs_preserves_edges(self, params):
        """Widening every arc can only add intersections, never remove."""
        centers = np.array([p[0] for p in params])
        halves = np.array([min(p[1], math.pi - 1e-6) for p in params])
        before = arcs_intersect(centers, halves)
        after = arcs_intersect(centers, np.minimum(halves + 0.1, math.pi))
        assert (before <= after).all()
