"""Property test: vectorised ``arcs_intersect`` vs scalar ``Arc.intersects``.

The vectorised matrix must agree with the scalar pairwise predicate on
arbitrary arc sets, including the wrap-around seam at +-pi and
degenerate full-circle arcs (``half_width = pi``).
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Arc, arcs_intersect

ANGLES = st.floats(min_value=-math.pi, max_value=math.pi,
                   allow_nan=False, allow_infinity=False)
HALF_WIDTHS = st.floats(min_value=0.0, max_value=math.pi,
                        allow_nan=False, allow_infinity=False)
ARCS = st.lists(st.tuples(ANGLES, HALF_WIDTHS), min_size=1, max_size=8)


def _scalar_matrix(arcs):
    count = len(arcs)
    matrix = np.zeros((count, count), dtype=bool)
    for i in range(count):
        for j in range(count):
            if i != j:
                matrix[i, j] = arcs[i].intersects(arcs[j])
    return matrix


@settings(max_examples=120, deadline=None)
@given(ARCS)
def test_matches_scalar_arc_intersects(arc_params):
    arcs = [Arc(center=c, half_width=h) for c, h in arc_params]
    centers = np.array([a.center for a in arcs])
    half_widths = np.array([a.half_width for a in arcs])
    np.testing.assert_array_equal(arcs_intersect(centers, half_widths),
                                  _scalar_matrix(arcs))


@settings(max_examples=60, deadline=None)
@given(HALF_WIDTHS, HALF_WIDTHS)
def test_seam_opposite_centers(width_a, width_b):
    """Arcs hugging the +-pi seam from either side."""
    arcs = [Arc(center=math.pi, half_width=width_a),
            Arc(center=-math.pi, half_width=width_b),
            Arc(center=math.nextafter(math.pi, 0.0), half_width=width_a)]
    centers = np.array([a.center for a in arcs])
    half_widths = np.array([a.half_width for a in arcs])
    np.testing.assert_array_equal(arcs_intersect(centers, half_widths),
                                  _scalar_matrix(arcs))
    # +pi and -pi describe the same direction: separation 0.
    assert arcs_intersect(centers, half_widths)[0, 1] == (
        width_a + width_b >= 0.0)


@settings(max_examples=60, deadline=None)
@given(ANGLES, ANGLES, HALF_WIDTHS)
def test_full_circle_arc_intersects_everything(center_a, center_b, width):
    """A half_width = pi arc covers the whole circle."""
    arcs = [Arc(center=center_a, half_width=math.pi),
            Arc(center=center_b, half_width=width)]
    centers = np.array([a.center for a in arcs])
    half_widths = np.array([a.half_width for a in arcs])
    matrix = arcs_intersect(centers, half_widths)
    assert matrix[0, 1] and matrix[1, 0]
    np.testing.assert_array_equal(matrix, _scalar_matrix(arcs))


@settings(max_examples=60, deadline=None)
@given(ARCS)
def test_matrix_is_symmetric_with_false_diagonal(arc_params):
    centers = np.array([c for c, _ in arc_params])
    half_widths = np.array([h for _, h in arc_params])
    matrix = arcs_intersect(centers, half_widths)
    np.testing.assert_array_equal(matrix, matrix.T)
    assert not matrix.diagonal().any()
