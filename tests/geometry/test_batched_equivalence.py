"""Golden equivalence: batched converter vs per-target converter.

The batched all-targets converter promises *exact* float64 equality with
:meth:`OcclusionGraphConverter.convert` — adjacency, distances, centers
and half-widths — for every target, including the ``view_limit`` and
``fov`` variants.  These tests pin that contract.
"""

import numpy as np
import pytest

from repro.geometry import (
    BatchedOcclusionConverter,
    DynamicOcclusionGraph,
    OcclusionGraphConverter,
)


def _assert_graphs_equal(reference, batched):
    assert reference.target == batched.target
    np.testing.assert_array_equal(reference.adjacency, batched.adjacency)
    np.testing.assert_array_equal(reference.distances, batched.distances)
    np.testing.assert_array_equal(reference.centers, batched.centers)
    np.testing.assert_array_equal(reference.half_widths, batched.half_widths)
    assert reference.body_radius == batched.body_radius


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("kwargs", [
    {},
    {"body_radius": 0.45},
    {"view_limit": 4.0},
    {"fov": 2.0},
    {"view_limit": 3.0, "fov": 1.5},
])
def test_convert_frame_matches_per_target(seed, kwargs):
    rng = np.random.default_rng(seed)
    count = int(rng.integers(3, 30))
    positions = rng.uniform(-5, 5, size=(count, 2))
    targets = rng.choice(count, size=min(count, 7), replace=False)

    reference = OcclusionGraphConverter(**kwargs)
    batched = BatchedOcclusionConverter(**kwargs)
    frame = batched.convert_frame(positions, targets, facing=0.7)
    for slot, target in enumerate(targets):
        _assert_graphs_equal(reference.convert(positions, int(target),
                                               facing=0.7),
                             frame.graph(slot))


def test_convert_frame_handles_coincident_positions():
    positions = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
    reference = OcclusionGraphConverter()
    frame = BatchedOcclusionConverter().convert_frame(positions, [0, 1, 2, 3])
    for slot, target in enumerate(range(4)):
        _assert_graphs_equal(reference.convert(positions, target),
                             frame.graph(slot))


@pytest.mark.parametrize("depth", [2, 3])
def test_convert_trajectory_matches_per_target(depth):
    rng = np.random.default_rng(7)
    horizon, count = 6, 15
    trajectory = rng.uniform(-4, 4, size=(horizon, count, depth))
    targets = [0, 4, 11]

    reference = OcclusionGraphConverter()
    snapshot_lists = BatchedOcclusionConverter().convert_trajectory(
        trajectory, targets)
    for slot, target in enumerate(targets):
        expected = reference.convert_trajectory(trajectory, target)
        assert len(snapshot_lists[slot]) == horizon
        for ref_graph, batched_graph in zip(expected, snapshot_lists[slot]):
            _assert_graphs_equal(ref_graph, batched_graph)


def test_convert_dogs_matches_from_trajectory():
    rng = np.random.default_rng(11)
    trajectory = rng.uniform(-3, 3, size=(5, 12, 2))
    targets = [2, 9]
    converter = OcclusionGraphConverter()
    dogs = BatchedOcclusionConverter.like(converter).convert_dogs(
        trajectory, targets)
    assert sorted(dogs) == targets
    for target in targets:
        expected = DynamicOcclusionGraph.from_trajectory(
            trajectory, target, converter)
        assert len(dogs[target]) == len(expected)
        for ref_graph, batched_graph in zip(expected, dogs[target]):
            _assert_graphs_equal(ref_graph, batched_graph)


def test_small_kernel_chunks_match_unchunked():
    """Chunked kernel workspaces must not change any value."""
    import repro.geometry.batched as batched_module

    rng = np.random.default_rng(3)
    positions = rng.uniform(-5, 5, size=(20, 2))
    targets = np.arange(20)
    full = BatchedOcclusionConverter().convert_frame(positions, targets)

    original = batched_module._KERNEL_WORKSPACE_ELEMENTS
    batched_module._KERNEL_WORKSPACE_ELEMENTS = 1   # 1 target per chunk
    try:
        chunked = BatchedOcclusionConverter().convert_frame(positions,
                                                            targets)
    finally:
        batched_module._KERNEL_WORKSPACE_ELEMENTS = original
    np.testing.assert_array_equal(full.adjacency, chunked.adjacency)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("kwargs", [
    {},
    {"body_radius": 0.45},
    {"view_limit": 4.0},
    {"fov": 2.0},
    {"view_limit": 3.0, "fov": 1.5},
])
def test_convert_rooms_matches_per_room_convert(seed, kwargs):
    """Stacked per-room kernel == scalar convert, room by room."""
    rng = np.random.default_rng(seed)
    rooms, count = int(rng.integers(1, 9)), int(rng.integers(3, 20))
    positions = rng.uniform(-5, 5, size=(rooms, count, 2))
    targets = rng.integers(0, count, size=rooms)

    reference = OcclusionGraphConverter(**kwargs)
    graphs = BatchedOcclusionConverter(**kwargs).convert_rooms(
        positions, targets, facing=0.7)
    assert len(graphs) == rooms
    for b in range(rooms):
        _assert_graphs_equal(
            reference.convert(positions[b], int(targets[b]), facing=0.7),
            graphs[b])


def test_convert_rooms_chunked_kernel_matches():
    """Room batches larger than one kernel chunk stay bit-identical."""
    import repro.geometry.batched as batched_module

    rng = np.random.default_rng(13)
    positions = rng.uniform(-4, 4, size=(12, 10, 2))
    targets = rng.integers(0, 10, size=12)
    full = BatchedOcclusionConverter().convert_rooms(positions, targets)

    original = batched_module._KERNEL_WORKSPACE_ELEMENTS
    batched_module._KERNEL_WORKSPACE_ELEMENTS = 1   # 1 room per chunk
    try:
        chunked = BatchedOcclusionConverter().convert_rooms(positions,
                                                            targets)
    finally:
        batched_module._KERNEL_WORKSPACE_ELEMENTS = original
    for a, b in zip(full, chunked):
        _assert_graphs_equal(a, b)


def test_convert_rooms_rejects_bad_shapes():
    converter = BatchedOcclusionConverter()
    with pytest.raises(ValueError):
        converter.convert_rooms(np.zeros((4, 2)), [0])
    with pytest.raises(ValueError):
        converter.convert_rooms(np.zeros((2, 4, 2)), [0])   # 2 rooms, 1 target
    with pytest.raises(IndexError):
        converter.convert_rooms(np.zeros((2, 4, 2)), [0, 4])


def test_rejects_out_of_range_targets():
    positions = np.zeros((4, 2))
    converter = BatchedOcclusionConverter()
    with pytest.raises(IndexError):
        converter.convert_frame(positions, [0, 4])
    with pytest.raises(IndexError):
        converter.convert_trajectory(np.zeros((2, 4, 2)), [-1])
    with pytest.raises(ValueError):
        converter.convert_trajectory(np.zeros((4, 2)), [0])


def test_multi_target_graphs_container():
    rng = np.random.default_rng(5)
    positions = rng.uniform(-2, 2, size=(8, 2))
    frame = BatchedOcclusionConverter().convert_frame(positions, [1, 6])
    assert frame.num_targets == 2
    graphs = frame.graphs()
    assert [g.target for g in graphs] == [1, 6]
    # graph() returns views over the batched arrays, not copies
    assert graphs[0].adjacency.base is frame.adjacency
