"""Property-based tests on the geometric substrate (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    DynamicOcclusionGraph,
    OcclusionGraphConverter,
    arc_of_user,
    structural_delta,
)


@st.composite
def positions_strategy(draw, min_users=3, max_users=12):
    count = draw(st.integers(min_users, max_users))
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 8, size=(count, 2))


@settings(max_examples=50, deadline=None)
@given(positions_strategy())
def test_occlusion_graph_invariants(positions):
    graph = OcclusionGraphConverter().convert(positions, 0)
    adjacency = graph.adjacency
    # Symmetric, no self-loops, isolated target.
    np.testing.assert_array_equal(adjacency, adjacency.T)
    assert not adjacency.diagonal().any()
    assert not adjacency[0].any()
    # Distances non-negative, zero only at the target.
    assert graph.distances[0] == 0.0
    assert (graph.distances[1:] >= 0.0).all()
    # Half-widths in (0, pi/2] for non-target users.
    assert (graph.half_widths[1:] > 0.0).all()
    assert (graph.half_widths[1:] <= math.pi / 2 + 1e-12).all()


@settings(max_examples=50, deadline=None)
@given(positions_strategy(), st.floats(0.05, 0.3))
def test_translation_invariance(positions, shift):
    """Moving the whole scene leaves the occlusion graph unchanged."""
    converter = OcclusionGraphConverter()
    base = converter.convert(positions, 0)
    moved = converter.convert(positions + shift, 0)
    np.testing.assert_array_equal(base.adjacency, moved.adjacency)
    np.testing.assert_allclose(base.distances, moved.distances, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(positions_strategy())
def test_rotation_invariance_of_edges(positions):
    """Rotating the scene about the target preserves arc overlaps
    (up to floating-point boundary cases, excluded by a margin)."""
    converter = OcclusionGraphConverter()
    base = converter.convert(positions, 0)
    angle = 0.7
    rotation = np.array([[math.cos(angle), -math.sin(angle)],
                         [math.sin(angle), math.cos(angle)]])
    rotated_positions = (positions - positions[0]) @ rotation.T + positions[0]
    rotated = converter.convert(rotated_positions, 0)

    from repro.geometry import angular_separation
    separation = angular_separation(base.centers[:, None],
                                    base.centers[None, :])
    margin = np.abs(separation - (base.half_widths[:, None]
                                  + base.half_widths[None, :]))
    decisive = margin > 1e-6
    np.testing.assert_array_equal(base.adjacency[decisive],
                                  rotated.adjacency[decisive])


@settings(max_examples=50, deadline=None)
@given(positions_strategy(), st.integers(0, 10_000))
def test_structural_delta_antisymmetry(positions, seed):
    """delta(A, B)[:, 1:] == -delta(B, A)[:, 1:]"""
    rng = np.random.default_rng(seed)
    other = rng.uniform(0, 8, size=positions.shape)
    converter = OcclusionGraphConverter()
    a = converter.convert(positions, 0).adjacency_float()
    b = converter.convert(other, 0).adjacency_float()
    forward = structural_delta(a, b)
    backward = structural_delta(b, a)
    np.testing.assert_allclose(forward[:, 1:], -backward[:, 1:], atol=1e-9)
    np.testing.assert_allclose(forward[:, 0], 1.0)


@settings(max_examples=30, deadline=None)
@given(positions_strategy(min_users=4, max_users=8), st.integers(2, 5))
def test_dog_static_trajectory_has_constant_graphs(positions, steps):
    trajectory = np.stack([positions] * steps)
    dog = DynamicOcclusionGraph.from_trajectory(trajectory, 0)
    np.testing.assert_array_equal(dog.edge_change_counts(), 0)
    for t in range(1, steps):
        np.testing.assert_array_equal(dog.adjacency(t), dog.adjacency(0))


@settings(max_examples=50, deadline=None)
@given(st.floats(0.3, 10.0), st.floats(-math.pi, math.pi),
       st.floats(0.05, 0.25))
def test_arc_width_monotone_in_distance(distance, bearing, radius):
    """A farther user subtends a smaller (or equal) arc."""
    target = np.zeros(2)
    near = np.array([distance * math.cos(bearing),
                     distance * math.sin(bearing)])
    far = near * 2.0
    arc_near = arc_of_user(target, near, radius)
    arc_far = arc_of_user(target, far, radius)
    assert arc_far.half_width <= arc_near.half_width + 1e-12
    assert arc_far.center == pytest.approx(arc_near.center, abs=1e-9)
