"""Tests for the occlusion-graph converter and dynamic occlusion graphs."""

import numpy as np
import pytest

from repro.geometry import (
    DynamicOcclusionGraph,
    OcclusionGraphConverter,
    structural_delta,
)


def collinear_positions():
    """Target at origin; users 1 and 2 collinear behind each other; 3 aside."""
    return np.array([
        [0.0, 0.0],   # target
        [2.0, 0.0],   # near, east
        [4.0, 0.0],   # far, directly behind user 1
        [0.0, 3.0],   # north, clear
    ])


class TestConverter:
    def test_target_is_isolated(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        assert not graph.adjacency[0].any()
        assert not graph.adjacency[:, 0].any()

    def test_collinear_users_occlude(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        assert graph.adjacency[1, 2]

    def test_perpendicular_users_clear(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        assert not graph.adjacency[1, 3]
        assert not graph.adjacency[2, 3]

    def test_adjacency_symmetric(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, 10, size=(20, 2))
        graph = OcclusionGraphConverter().convert(pos, target=0)
        np.testing.assert_array_equal(graph.adjacency, graph.adjacency.T)

    def test_distances_from_target(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        np.testing.assert_allclose(graph.distances, [0.0, 2.0, 4.0, 3.0])

    def test_3d_positions_projected(self):
        pos3d = np.array([[0.0, 1.7, 0.0], [2.0, 1.6, 0.0],
                          [4.0, 1.8, 0.0], [0.0, 1.7, 3.0]])
        graph = OcclusionGraphConverter().convert(pos3d, target=0)
        assert graph.adjacency[1, 2]

    def test_view_limit_prunes_far_users(self):
        converter = OcclusionGraphConverter(view_limit=3.0)
        graph = converter.convert(collinear_positions(), target=0)
        assert not graph.adjacency[1, 2]  # user 2 beyond the 3 m limit

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OcclusionGraphConverter(body_radius=0.0)
        with pytest.raises(ValueError):
            OcclusionGraphConverter(view_limit=-1.0)

    def test_invalid_target(self):
        with pytest.raises(IndexError):
            OcclusionGraphConverter().convert(collinear_positions(), target=9)

    def test_larger_bodies_create_more_edges(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0, 10, size=(30, 2))
        small = OcclusionGraphConverter(body_radius=0.1).convert(pos, 0)
        large = OcclusionGraphConverter(body_radius=0.5).convert(pos, 0)
        assert large.num_edges >= small.num_edges

    def test_edges_and_degree_consistent(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        assert graph.num_edges == len(graph.edges())
        assert graph.degree().sum() == 2 * graph.num_edges

    def test_neighbors(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        np.testing.assert_array_equal(graph.neighbors(1), [2])

    def test_subgraph_adjacency_masks_rows_and_cols(self):
        graph = OcclusionGraphConverter().convert(collinear_positions(), target=0)
        mask = np.array([True, True, False, True])
        sub = graph.subgraph_adjacency(mask)
        assert not sub[2].any()
        assert not sub[:, 2].any()


class TestStructuralDelta:
    def test_no_change_gives_zero_deltas(self):
        adjacency = np.array([[0.0, 1], [1, 0]])
        delta = structural_delta(adjacency, adjacency)
        np.testing.assert_allclose(delta[:, 0], 1.0)
        np.testing.assert_allclose(delta[:, 1:], 0.0)

    def test_new_edge_raises_first_order(self):
        prev = np.zeros((3, 3))
        cur = np.zeros((3, 3))
        cur[0, 1] = cur[1, 0] = 1.0
        delta = structural_delta(cur, prev)
        np.testing.assert_allclose(delta[:, 1], [1.0, 1.0, 0.0])

    def test_second_order_counts_two_hop_change(self):
        prev = np.zeros((3, 3))
        cur = np.array([[0.0, 1, 0], [1, 0, 1], [0, 1, 0]])
        delta = structural_delta(cur, prev)
        # A^2 row sums: node 0 -> paths 0-1-0, 0-1-2 => 2
        np.testing.assert_allclose(delta[:, 2], [2.0, 2.0, 2.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            structural_delta(np.zeros((2, 2)), np.zeros((3, 3)))


class TestDynamicOcclusionGraph:
    def make_trajectory(self, steps=5):
        base = collinear_positions()
        frames = []
        for t in range(steps):
            frame = base.copy()
            frame[3, 0] += 0.1 * t  # user 3 drifts east
            frames.append(frame)
        return np.stack(frames)

    def test_from_trajectory_length(self):
        dog = DynamicOcclusionGraph.from_trajectory(self.make_trajectory(), 0)
        assert len(dog) == 5
        assert dog.horizon == 4

    def test_target_mismatch_raises(self):
        converter = OcclusionGraphConverter()
        snaps = [converter.convert(collinear_positions(), 0)]
        with pytest.raises(ValueError):
            DynamicOcclusionGraph(target=1, snapshots=snaps)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DynamicOcclusionGraph(target=0, snapshots=[])

    def test_adjacency_before_start_is_zero(self):
        dog = DynamicOcclusionGraph.from_trajectory(self.make_trajectory(), 0)
        np.testing.assert_allclose(dog.adjacency(-1), 0.0)

    def test_delta_at_zero_equals_initial_structure(self):
        dog = DynamicOcclusionGraph.from_trajectory(self.make_trajectory(), 0)
        delta = dog.delta(0)
        np.testing.assert_allclose(delta[:, 1], dog.adjacency(0).sum(axis=1))

    def test_edge_change_counts_shape(self):
        dog = DynamicOcclusionGraph.from_trajectory(self.make_trajectory(), 0)
        assert dog.edge_change_counts().shape == (4,)

    def test_static_scene_has_no_changes(self):
        frames = np.stack([collinear_positions()] * 4)
        dog = DynamicOcclusionGraph.from_trajectory(frames, 0)
        np.testing.assert_array_equal(dog.edge_change_counts(), 0)

    def test_mean_edge_density_in_unit_interval(self):
        dog = DynamicOcclusionGraph.from_trajectory(self.make_trajectory(), 0)
        assert 0.0 <= dog.mean_edge_density() <= 1.0

    def test_iteration_yields_snapshots(self):
        dog = DynamicOcclusionGraph.from_trajectory(self.make_trajectory(), 0)
        assert all(snap.target == 0 for snap in dog)
