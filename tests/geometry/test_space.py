"""Unit tests for repro.geometry.space."""

import numpy as np
import pytest

from repro.geometry import Room, pairwise_distances, project_to_floor, relative_angles


class TestRoom:
    def test_square_default_side(self):
        room = Room.square()
        assert room.width == 10.0
        assert room.depth == 10.0

    def test_area_and_center(self):
        room = Room(width=4.0, depth=6.0)
        assert room.area == 24.0
        np.testing.assert_allclose(room.center, [2.0, 3.0])

    def test_diagonal(self):
        room = Room(width=3.0, depth=4.0)
        assert room.diagonal == pytest.approx(5.0)

    def test_contains(self):
        room = Room.square(10.0)
        inside = room.contains(np.array([[5.0, 5.0], [10.0, 0.0], [-0.1, 5.0]]))
        np.testing.assert_array_equal(inside, [True, True, False])

    def test_clamp(self):
        room = Room.square(10.0)
        clamped = room.clamp(np.array([[-1.0, 5.0], [11.0, 12.0]]))
        np.testing.assert_allclose(clamped, [[0.0, 5.0], [10.0, 10.0]])

    def test_clamp_does_not_mutate_input(self):
        room = Room.square(10.0)
        original = np.array([[-1.0, 5.0]])
        room.clamp(original)
        np.testing.assert_allclose(original, [[-1.0, 5.0]])

    def test_sample_positions_inside_with_margin(self):
        room = Room.square(10.0)
        pos = room.sample_positions(200, np.random.default_rng(0), margin=0.5)
        assert pos.shape == (200, 2)
        assert (pos >= 0.5).all()
        assert (pos <= 9.5).all()

    def test_sample_positions_deterministic_under_seed(self):
        room = Room.square(10.0)
        a = room.sample_positions(10, np.random.default_rng(7))
        b = room.sample_positions(10, np.random.default_rng(7))
        np.testing.assert_allclose(a, b)


class TestProjection:
    def test_2d_passthrough_copy(self):
        pos = np.array([[1.0, 2.0]])
        out = project_to_floor(pos)
        np.testing.assert_allclose(out, pos)
        out[0, 0] = 99.0
        assert pos[0, 0] == 1.0

    def test_3d_drops_vertical_y(self):
        pos = np.array([[1.0, 5.0, 2.0]])  # (x, y=height, z)
        np.testing.assert_allclose(project_to_floor(pos), [[1.0, 2.0]])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            project_to_floor(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            project_to_floor(np.zeros(3))


class TestDistancesAngles:
    def test_pairwise_distances_symmetric_zero_diag(self):
        pos = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        dist = pairwise_distances(pos)
        np.testing.assert_allclose(dist, dist.T)
        np.testing.assert_allclose(np.diag(dist), 0.0)
        assert dist[0, 1] == pytest.approx(5.0)

    def test_relative_angles_cardinal_directions(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        angles = relative_angles(pos, target=0)
        assert angles[1] == pytest.approx(0.0)
        assert angles[2] == pytest.approx(np.pi / 2)
        assert abs(angles[3]) == pytest.approx(np.pi)

    def test_relative_angles_target_entry_zero(self):
        pos = np.random.default_rng(0).uniform(0, 10, size=(5, 2))
        assert relative_angles(pos, target=3)[3] == 0.0
