"""Tests for visibility resolution and the occlusion-rate metric."""

import numpy as np
import pytest

from repro.geometry import (
    OcclusionGraphConverter,
    forced_presence_mask,
    occlusion_rate,
    physically_blocked_mask,
    resolve_visibility,
)


def line_scene():
    """Target at origin; 1 near-east, 2 far-east (behind 1), 3 north."""
    positions = np.array([
        [0.0, 0.0],
        [2.0, 0.0],
        [4.0, 0.0],
        [0.0, 3.0],
    ])
    return OcclusionGraphConverter().convert(positions, target=0)


class TestForcedPresence:
    def test_mr_target_sees_mr_users(self):
        interfaces = np.array([True, True, False, True])  # MR flags
        forced = forced_presence_mask(interfaces, target=0)
        np.testing.assert_array_equal(forced, [False, True, False, True])

    def test_vr_target_sees_nothing_forced(self):
        interfaces = np.array([False, True, True, True])
        forced = forced_presence_mask(interfaces, target=0)
        assert not forced.any()

    def test_target_never_forced(self):
        interfaces = np.array([True, True])
        assert not forced_presence_mask(interfaces, target=0)[0]


class TestResolveVisibility:
    def test_unoccluded_rendered_user_visible(self):
        graph = line_scene()
        rendered = np.array([False, False, False, True])
        visible = resolve_visibility(graph, rendered)
        np.testing.assert_array_equal(visible, [False, False, False, True])

    def test_overlapping_avatars_clutter_each_other(self):
        """Avatar-avatar occlusion is symmetric and depth-free (the
        MWIS/Theorem-1 semantics): both overlapping avatars are unclear."""
        graph = line_scene()
        rendered = np.array([False, True, True, False])
        visible = resolve_visibility(graph, rendered)
        assert not visible[1]
        assert not visible[2]

    def test_farther_physical_does_not_occlude_nearer_avatar(self):
        graph = line_scene()
        rendered = np.array([False, True, False, False])
        forced = np.array([False, False, True, False])  # far user physically there
        visible = resolve_visibility(graph, rendered, forced)
        assert visible[1]

    def test_forced_user_occludes_rendered(self):
        graph = line_scene()
        rendered = np.array([False, False, True, False])  # only far user rendered
        forced = np.array([False, True, False, False])    # near user physical
        visible = resolve_visibility(graph, rendered, forced)
        assert not visible[2]
        assert visible[1]  # forced user itself visible

    def test_rendered_avatar_can_cover_physical_user(self):
        """Fig. 2b semantics: a nearer virtual avatar occludes an MR user."""
        graph = line_scene()
        rendered = np.array([False, True, False, False])  # near avatar rendered
        forced = np.array([False, False, True, False])    # far user physical
        visible = resolve_visibility(graph, rendered, forced)
        assert visible[1]
        assert not visible[2]

    def test_unrendered_user_invisible(self):
        graph = line_scene()
        visible = resolve_visibility(graph, np.zeros(4, dtype=bool))
        assert not visible.any()

    def test_target_never_visible_to_self(self):
        graph = line_scene()
        rendered = np.ones(4, dtype=bool)
        assert not resolve_visibility(graph, rendered)[0]

    def test_does_not_mutate_inputs(self):
        graph = line_scene()
        rendered = np.ones(4, dtype=bool)
        resolve_visibility(graph, rendered)
        assert rendered.all()


class TestPhysicallyBlocked:
    def test_candidate_behind_physical_user_blocked(self):
        graph = line_scene()
        forced = np.array([False, True, False, False])
        blocked = physically_blocked_mask(graph, forced)
        np.testing.assert_array_equal(blocked, [False, False, True, False])

    def test_no_forced_users_no_blocking(self):
        graph = line_scene()
        assert not physically_blocked_mask(graph, np.zeros(4, dtype=bool)).any()

    def test_forced_users_not_marked(self):
        graph = line_scene()
        forced = np.array([False, True, True, False])
        blocked = physically_blocked_mask(graph, forced)
        assert not blocked[1]
        assert not blocked[2]

    def test_candidate_in_front_of_physical_not_blocked(self):
        graph = line_scene()
        forced = np.array([False, False, True, False])  # far user physical
        blocked = physically_blocked_mask(graph, forced)
        assert not blocked[1]  # near candidate unaffected


class TestOcclusionRate:
    def test_zero_when_all_clear(self):
        graph = line_scene()
        rendered = np.array([False, True, False, True])
        assert occlusion_rate(graph, rendered) == 0.0

    def test_full_when_two_avatars_overlap(self):
        graph = line_scene()
        rendered = np.array([False, True, True, False])
        assert occlusion_rate(graph, rendered) == pytest.approx(1.0)

    def test_partial_when_one_avatar_clear(self):
        graph = line_scene()
        rendered = np.array([False, True, True, True])
        assert occlusion_rate(graph, rendered) == pytest.approx(2.0 / 3.0)

    def test_empty_recommendation_zero(self):
        graph = line_scene()
        assert occlusion_rate(graph, np.zeros(4, dtype=bool)) == 0.0

    def test_target_in_rendered_mask_ignored(self):
        graph = line_scene()
        rendered = np.array([True, True, False, False])
        assert occlusion_rate(graph, rendered) == 0.0

    def test_forced_occluders_count_against_rate(self):
        graph = line_scene()
        rendered = np.array([False, False, True, False])
        forced = np.array([False, True, False, False])
        assert occlusion_rate(graph, rendered, forced) == pytest.approx(1.0)
