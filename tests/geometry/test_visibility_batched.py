"""Single-pass and episode-level visibility vs the standalone functions."""

import numpy as np
import pytest

from repro.geometry import (
    OcclusionGraphConverter,
    forced_presence_mask,
    occlusion_rate,
    resolve_episode_visibility,
    resolve_visibility,
    resolve_visibility_with_occlusion,
)


def random_scene(rng, count):
    positions = rng.uniform(-4, 4, size=(count, 2))
    target = int(rng.integers(0, count))
    graph = OcclusionGraphConverter().convert(positions, target)
    interfaces_mr = rng.random(count) < 0.5
    forced = forced_presence_mask(interfaces_mr, target)
    rendered = rng.random(count) < 0.3
    return graph, rendered, forced


@pytest.mark.parametrize("seed", range(6))
def test_combined_resolution_matches_standalone(seed):
    rng = np.random.default_rng(seed)
    graph, rendered, forced = random_scene(rng, int(rng.integers(3, 25)))
    visible, rate = resolve_visibility_with_occlusion(graph, rendered, forced)
    np.testing.assert_array_equal(
        visible, resolve_visibility(graph, rendered, forced))
    assert rate == occlusion_rate(graph, rendered, forced)


def test_combined_resolution_without_forced_mask():
    rng = np.random.default_rng(9)
    graph, rendered, _ = random_scene(rng, 12)
    visible, rate = resolve_visibility_with_occlusion(graph, rendered)
    np.testing.assert_array_equal(visible,
                                  resolve_visibility(graph, rendered))
    assert rate == occlusion_rate(graph, rendered)


def test_combined_resolution_empty_rendering():
    rng = np.random.default_rng(1)
    graph, _, forced = random_scene(rng, 8)
    nothing = np.zeros(8, dtype=bool)
    visible, rate = resolve_visibility_with_occlusion(graph, nothing, forced)
    assert rate == 0.0
    np.testing.assert_array_equal(
        visible, resolve_visibility(graph, nothing, forced))


@pytest.mark.parametrize("seed", range(4))
def test_episode_resolution_matches_per_step(seed):
    rng = np.random.default_rng(seed + 100)
    count = int(rng.integers(4, 20))
    horizon = int(rng.integers(1, 7))
    trajectory = rng.uniform(-4, 4, size=(horizon, count, 2))
    target = int(rng.integers(0, count))
    converter = OcclusionGraphConverter()
    graphs = [converter.convert(trajectory[t], target)
              for t in range(horizon)]
    forced = forced_presence_mask(rng.random(count) < 0.5, target)
    rendered = rng.random((horizon, count)) < 0.3

    visible, rates = resolve_episode_visibility(graphs, rendered, forced)
    assert visible.shape == (horizon, count)
    assert rates.shape == (horizon,)
    for t in range(horizon):
        step_visible, step_rate = resolve_visibility_with_occlusion(
            graphs[t], rendered[t], forced)
        np.testing.assert_array_equal(visible[t], step_visible)
        assert rates[t] == step_rate
