"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

from repro.core import AfterProblem, evaluate_episode, evaluate_targets
from repro.datasets import RoomConfig, generate_room
from repro.models import (
    COMURNetRecommender,
    NearestRecommender,
    OracleStepRecommender,
    POSHGNN,
    RandomRecommender,
    RenderAllRecommender,
)

SMALL = RoomConfig(num_users=25, num_steps=8)


@pytest.fixture(scope="module", params=["timik", "smm", "hubs"])
def any_room(request):
    if request.param == "hubs":
        from repro.datasets import hubs_config
        return generate_room("hubs", hubs_config(num_users=15, num_steps=8),
                             seed=0)
    return generate_room(request.param, SMALL, seed=0)


RECOMMENDER_FACTORIES = [
    lambda: RandomRecommender(seed=0),
    lambda: NearestRecommender(),
    lambda: RenderAllRecommender(),
    lambda: OracleStepRecommender(),
    lambda: COMURNetRecommender(rollouts=2, seed=0),
    lambda: POSHGNN(seed=0),
]


class TestPipelineInvariants:
    @pytest.mark.parametrize("factory", RECOMMENDER_FACTORIES)
    def test_metrics_well_formed(self, any_room, factory):
        problem = AfterProblem(any_room, target=0)
        result = evaluate_episode(problem, factory())
        assert result.after_utility >= 0.0
        assert result.preference >= 0.0
        assert result.presence >= 0.0
        assert 0.0 <= result.occlusion_rate <= 1.0
        assert result.runtime_ms >= 0.0
        assert np.isfinite(result.per_step_after).all()

    @pytest.mark.parametrize("factory", RECOMMENDER_FACTORIES)
    def test_after_is_beta_combination(self, any_room, factory):
        problem = AfterProblem(any_room, target=1, beta=0.3)
        result = evaluate_episode(problem, factory())
        assert result.after_utility == pytest.approx(
            0.7 * result.preference + 0.3 * result.presence)

    @pytest.mark.parametrize("factory", RECOMMENDER_FACTORIES)
    def test_evaluation_deterministic(self, any_room, factory):
        problem = AfterProblem(any_room, target=2)
        first = evaluate_episode(problem, factory())
        second = evaluate_episode(problem, factory())
        assert first.after_utility == pytest.approx(second.after_utility)
        np.testing.assert_array_equal(first.recommendations,
                                      second.recommendations)

    def test_presence_bounded_by_rendered_s_sum(self, any_room):
        """Presence cannot exceed the sum of s over ever-rendered users
        times the number of steps."""
        problem = AfterProblem(any_room, target=0)
        result = evaluate_episode(problem, NearestRecommender())
        s_row = any_room.presence[0]
        bound = 0.0
        for t in range(result.recommendations.shape[0]):
            bound += s_row[result.recommendations[t]].sum()
        assert result.presence <= bound + 1e-9

    def test_target_never_in_any_recommendation(self, any_room):
        for factory in RECOMMENDER_FACTORIES:
            problem = AfterProblem(any_room, target=3)
            result = evaluate_episode(problem, factory())
            assert not result.recommendations[:, 3].any()


class TestBetaExtremes:
    def test_beta_zero_counts_only_preference(self, any_room):
        problem = AfterProblem(any_room, target=0, beta=0.0)
        result = evaluate_episode(problem, NearestRecommender())
        assert result.after_utility == pytest.approx(result.preference)

    def test_beta_one_counts_only_presence(self, any_room):
        problem = AfterProblem(any_room, target=0, beta=1.0)
        result = evaluate_episode(problem, NearestRecommender())
        assert result.after_utility == pytest.approx(result.presence)


class TestBudgetEffects:
    def test_larger_budget_never_hurts_oracle_much(self, any_room):
        """The oracle with a larger display budget should not lose
        (it can always render fewer)."""
        small = evaluate_episode(AfterProblem(any_room, 0, max_render=2),
                                 OracleStepRecommender()).after_utility
        large = evaluate_episode(AfterProblem(any_room, 0, max_render=10),
                                 OracleStepRecommender()).after_utility
        assert large >= small - 1e-6

    def test_budget_one_renders_single_user(self, any_room):
        problem = AfterProblem(any_room, 0, max_render=1)
        result = evaluate_episode(problem, NearestRecommender())
        assert (result.recommendations.sum(axis=1) <= 1).all()


class TestTrainedModelsAcrossDatasets:
    def test_poshgnn_trains_on_every_dataset(self, any_room):
        problem = AfterProblem(any_room, target=0)
        model = POSHGNN(seed=0)
        history = model.fit([problem], epochs=4, restarts=1)
        assert np.isfinite(history["loss"]).all()
        result = evaluate_episode(problem, model)
        assert np.isfinite(result.after_utility)

    def test_evaluate_targets_multiple(self, any_room):
        result = evaluate_targets(any_room, NearestRecommender(),
                                  targets=[0, 1, 2, 3])
        assert len(result.episodes) == 4
        assert result.after_utility == pytest.approx(
            np.mean([e.after_utility for e in result.episodes]))
