"""Failure-injection tests: malformed inputs must fail loudly and early."""

import numpy as np
import pytest

from repro.core import AfterProblem, evaluate_episode
from repro.crowd import Trajectory
from repro.datasets import ConferenceRoom, RoomConfig, generate_timik_room
from repro.geometry import Room
from repro.models import POSHGNN
from repro.social import SocialGraph


@pytest.fixture(scope="module")
def room():
    return generate_timik_room(RoomConfig(num_users=12, num_steps=4), seed=0)


def clone_room(room, **overrides):
    fields = dict(
        name=room.name,
        trajectory=room.trajectory,
        social=room.social,
        preference=room.preference,
        presence=room.presence,
        interfaces_mr=room.interfaces_mr,
        room=room.room,
        body_radius=room.body_radius,
        seed=room.seed,
    )
    fields.update(overrides)
    return ConferenceRoom(**fields)


class TestMalformedRooms:
    def test_utility_above_one_rejected(self, room):
        bad = room.preference.copy()
        bad[1, 2] = 1.5
        with pytest.raises(ValueError):
            clone_room(room, preference=bad)

    def test_negative_utility_rejected(self, room):
        bad = room.presence.copy()
        bad[1, 2] = -0.1
        with pytest.raises(ValueError):
            clone_room(room, presence=bad)

    def test_wrong_interface_length_rejected(self, room):
        with pytest.raises(ValueError):
            clone_room(room, interfaces_mr=np.ones(5, dtype=bool))

    def test_mismatched_social_graph_rejected(self, room):
        small = SocialGraph(np.zeros((3, 3), dtype=bool), np.zeros(3))
        with pytest.raises(ValueError):
            clone_room(room, social=small)

    def test_wrong_utility_shape_rejected(self, room):
        with pytest.raises(ValueError):
            clone_room(room, preference=np.zeros((3, 3)))


class TestMalformedTrajectories:
    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((5, 2)))

    def test_wrong_last_dim_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((5, 3, 3)))


class TestRecommenderMisbehaviour:
    def test_wrong_length_recommendation_detected(self, room):
        """A recommender returning the wrong shape crashes loudly rather
        than silently corrupting metrics."""
        from repro.core import Recommender

        class Broken(Recommender):
            name = "broken"

            def recommend(self, frame):
                return np.zeros(3, dtype=bool)  # wrong length

        problem = AfterProblem(room, target=0)
        with pytest.raises((ValueError, IndexError)):
            evaluate_episode(problem, Broken())

    def test_recommender_returning_floats_coerced(self, room):
        from repro.core import Recommender

        class Floaty(Recommender):
            name = "floaty"

            def recommend(self, frame):
                scores = np.zeros(frame.num_users)
                scores[1] = 0.9
                return scores  # float array, truthiness = bool cast

        problem = AfterProblem(room, target=0)
        result = evaluate_episode(problem, Floaty())
        assert result.recommendations[:, 1].all()

    def test_untrained_poshgnn_still_valid(self, room):
        """Inference before fit() must produce valid (if poor) output."""
        problem = AfterProblem(room, target=0)
        result = evaluate_episode(problem, POSHGNN(seed=0))
        assert np.isfinite(result.after_utility)

    def test_recommend_before_reset_raises(self, room):
        model = POSHGNN(seed=0)
        problem = AfterProblem(room, target=0)
        with pytest.raises(AttributeError):
            model.recommend(problem.frame_at(0))


class TestDegenerateScenes:
    def test_two_user_room(self):
        room = generate_timik_room(RoomConfig(num_users=2, num_steps=2),
                                   seed=0)
        problem = AfterProblem(room, target=0, max_render=1)
        from repro.models import NearestRecommender
        result = evaluate_episode(problem, NearestRecommender())
        assert np.isfinite(result.after_utility)

    def test_single_step_episode(self):
        room = generate_timik_room(RoomConfig(num_users=8, num_steps=1),
                                   seed=0)
        problem = AfterProblem(room, target=0)
        from repro.models import RandomRecommender
        result = evaluate_episode(problem, RandomRecommender())
        # One step cannot build consecutive visibility beyond step 1.
        assert result.recommendations.shape[0] == 2

    def test_all_vr_room(self):
        room = generate_timik_room(
            RoomConfig(num_users=10, num_steps=3, vr_fraction=1.0), seed=0)
        problem = AfterProblem(room, target=0)
        frame = problem.frame_at(0)
        assert not frame.forced.any()
        assert not frame.blocked.any()

    def test_all_mr_room(self):
        room = generate_timik_room(
            RoomConfig(num_users=10, num_steps=3, vr_fraction=0.0), seed=0)
        problem = AfterProblem(room, target=0)
        frame = problem.frame_at(0)
        assert frame.forced.sum() == 9
