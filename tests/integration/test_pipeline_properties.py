"""Property-based tests on pipeline-level invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AfterProblem, evaluate_episode, step_utility
from repro.core.scene import build_frame
from repro.datasets import RoomConfig, generate_timik_room
from repro.geometry import (
    OcclusionGraphConverter,
    occlusion_rate,
    resolve_visibility,
)
from repro.models import RandomRecommender


@st.composite
def scene_strategy(draw):
    """A random small scene: positions, interfaces, utilities."""
    count = draw(st.integers(4, 12))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 6, size=(count, 2))
    interfaces = rng.random(count) < 0.5
    preference = rng.random(count)
    presence = rng.random(count)
    preference[0] = presence[0] = 0.0
    return positions, interfaces, preference, presence


@settings(max_examples=40, deadline=None)
@given(scene_strategy(), st.integers(0, 2 ** 16))
def test_visibility_subset_of_present(scene, render_seed):
    positions, interfaces, preference, presence = scene
    graph = OcclusionGraphConverter().convert(positions, 0)
    frame = build_frame(0, 0, graph, preference, presence, interfaces)
    rng = np.random.default_rng(render_seed)
    rendered = rng.random(len(positions)) < 0.5
    visible = resolve_visibility(graph, rendered, frame.forced)
    present = (rendered | frame.forced).copy()
    present[0] = False
    assert (visible <= present).all()   # visible => present
    assert not visible[0]


@settings(max_examples=40, deadline=None)
@given(scene_strategy(), st.integers(0, 2 ** 16))
def test_occlusion_rate_bounds(scene, render_seed):
    positions, interfaces, preference, presence = scene
    graph = OcclusionGraphConverter().convert(positions, 0)
    frame = build_frame(0, 0, graph, preference, presence, interfaces)
    rng = np.random.default_rng(render_seed)
    rendered = rng.random(len(positions)) < 0.5
    rate = occlusion_rate(graph, rendered, frame.forced)
    assert 0.0 <= rate <= 1.0


@settings(max_examples=40, deadline=None)
@given(scene_strategy(), st.integers(0, 2 ** 16))
def test_step_utility_nonnegative_and_bounded(scene, render_seed):
    positions, interfaces, preference, presence = scene
    graph = OcclusionGraphConverter().convert(positions, 0)
    frame = build_frame(0, 0, graph, preference, presence, interfaces)
    rng = np.random.default_rng(render_seed)
    rendered = rng.random(len(positions)) < 0.5
    rendered[0] = False
    visible = resolve_visibility(graph, rendered, frame.forced)
    step = step_utility(frame.preference, frame.presence, visible,
                        visible, rendered)
    assert 0.0 <= step.preference <= frame.preference.sum() + 1e-9
    assert 0.0 <= step.presence <= frame.presence.sum() + 1e-9


@settings(max_examples=40, deadline=None)
@given(scene_strategy())
def test_single_rendered_vr_user_for_vr_target_visible(scene):
    """With no physical users and a single rendered avatar, that avatar
    is always clearly seen (no one can clutter it)."""
    positions, _interfaces, preference, presence = scene
    interfaces = np.zeros(len(positions), dtype=bool)  # all VR
    graph = OcclusionGraphConverter().convert(positions, 0)
    frame = build_frame(0, 0, graph, preference, presence, interfaces)
    rendered = np.zeros(len(positions), dtype=bool)
    rendered[1] = True
    visible = resolve_visibility(graph, rendered, frame.forced)
    assert visible[1]


@settings(max_examples=40, deadline=None)
@given(scene_strategy(), st.integers(0, 2 ** 16))
def test_adding_avatars_never_reveals_others(scene, render_seed):
    """Avatar clutter is monotone: rendering an extra avatar can only
    hide previously visible avatars, never reveal them."""
    positions, _interfaces, preference, presence = scene
    interfaces = np.zeros(len(positions), dtype=bool)  # all virtual
    graph = OcclusionGraphConverter().convert(positions, 0)
    frame = build_frame(0, 0, graph, preference, presence, interfaces)
    rng = np.random.default_rng(render_seed)
    rendered = rng.random(len(positions)) < 0.4
    rendered[0] = False
    extra = rendered.copy()
    hidden_users = np.nonzero(~rendered)[0]
    hidden_users = hidden_users[hidden_users != 0]
    if hidden_users.size == 0:
        return
    extra[hidden_users[0]] = True
    before = resolve_visibility(graph, rendered, frame.forced)
    after = resolve_visibility(graph, extra, frame.forced)
    # Every originally-rendered user visible after must be visible before.
    assert (after[rendered] <= before[rendered]).all()


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 500), st.integers(2, 4))
def test_random_room_episode_is_finite(seed, budget):
    room = generate_timik_room(RoomConfig(num_users=12, num_steps=4),
                               seed=seed)
    problem = AfterProblem(room, target=0, max_render=budget)
    result = evaluate_episode(problem, RandomRecommender(seed=seed))
    assert np.isfinite(result.after_utility)
    assert (result.recommendations.sum(axis=1) <= budget).all()
