"""Shared fixtures for model tests: a small room and its problems."""

import numpy as np
import pytest

from repro.core import AfterProblem
from repro.datasets import RoomConfig, generate_timik_room


@pytest.fixture(scope="session")
def room():
    """Small dense room shared by all model tests."""
    return generate_timik_room(RoomConfig(num_users=30, num_steps=10), seed=0)


@pytest.fixture(scope="session")
def problem(room):
    return AfterProblem(room, target=0)


@pytest.fixture(scope="session")
def vr_problem(room):
    """A problem whose target is a VR (remote) user."""
    target = int(np.nonzero(~room.interfaces_mr)[0][0])
    return AfterProblem(room, target=target)


@pytest.fixture(scope="session")
def train_problems(room):
    return [AfterProblem(room, t) for t in (0, 1)]
