"""Tests for the seven baseline recommenders and the oracle."""

import numpy as np
import pytest

from repro.core import AfterProblem, evaluate_episode
from repro.geometry import resolve_visibility
from repro.models import (
    COMURNetRecommender,
    DCRNNRecommender,
    GraFrankRecommender,
    MvAGCRecommender,
    NearestRecommender,
    OracleStepRecommender,
    RandomRecommender,
    RenderAllRecommender,
    TGCNRecommender,
)


class TestRandom:
    def test_static_set_across_steps(self, problem):
        rec = RandomRecommender(seed=0)
        rec.reset(problem)
        first = rec.recommend(problem.frame_at(0))
        second = rec.recommend(problem.frame_at(1))
        np.testing.assert_array_equal(first, second)

    def test_resample_variant_changes(self, problem):
        rec = RandomRecommender(seed=0, resample_each_step=True)
        rec.reset(problem)
        masks = [rec.recommend(problem.frame_at(t)) for t in range(5)]
        assert any(not np.array_equal(masks[0], m) for m in masks[1:])

    def test_respects_budget(self, problem):
        rec = RandomRecommender(seed=0)
        rec.reset(problem)
        assert rec.recommend(problem.frame_at(0)).sum() == problem.max_render

    def test_never_selects_target(self, problem):
        rec = RandomRecommender(seed=1)
        rec.reset(problem)
        assert not rec.recommend(problem.frame_at(0))[problem.target]

    def test_deterministic_per_target(self, problem):
        a = RandomRecommender(seed=3)
        b = RandomRecommender(seed=3)
        a.reset(problem)
        b.reset(problem)
        np.testing.assert_array_equal(a.recommend(problem.frame_at(0)),
                                      b.recommend(problem.frame_at(0)))


class TestNearest:
    def test_selects_nearest_users(self, problem):
        rec = NearestRecommender()
        rec.reset(problem)
        frame = problem.frame_at(0)
        rendered = rec.recommend(frame)
        chosen = frame.distances[rendered]
        others = np.ones(frame.num_users, dtype=bool)
        others[frame.target] = False
        others &= ~rendered
        assert chosen.max() <= frame.distances[others].min() + 1e-9

    def test_budget(self, problem):
        rec = NearestRecommender()
        rec.reset(problem)
        assert rec.recommend(problem.frame_at(0)).sum() <= problem.max_render

    def test_adapts_to_motion(self, problem):
        rec = NearestRecommender()
        rec.reset(problem)
        sets = {tuple(np.nonzero(rec.recommend(problem.frame_at(t)))[0])
                for t in range(problem.horizon + 1)}
        # Over an episode the nearest set eventually changes.
        assert len(sets) >= 1


class TestRenderAll:
    def test_renders_everyone_but_target(self, problem):
        rec = RenderAllRecommender()
        rec.reset(problem)
        rendered = rec.recommend(problem.frame_at(0))
        assert rendered.sum() == problem.num_users - 1
        assert not rendered[problem.target]


class TestMvAGC:
    def test_validation(self):
        with pytest.raises(ValueError):
            MvAGCRecommender(num_clusters=0)
        with pytest.raises(ValueError):
            MvAGCRecommender(filter_order=0)
        with pytest.raises(ValueError):
            MvAGCRecommender(anchor_fraction=0.0)

    def test_static_recommendation(self, problem):
        rec = MvAGCRecommender(seed=0)
        rec.fit([problem])
        rec.reset(problem)
        first = rec.recommend(problem.frame_at(0))
        second = rec.recommend(problem.frame_at(3))
        np.testing.assert_array_equal(first, second)

    def test_reset_refits_for_new_room(self, room, problem):
        from repro.datasets import RoomConfig, generate_timik_room
        other_room = generate_timik_room(
            RoomConfig(num_users=30, num_steps=5), seed=9)
        rec = MvAGCRecommender(seed=0)
        rec.reset(problem)                      # lazily fits on `room`
        rec.reset(AfterProblem(other_room, 0))  # must refit
        rendered = rec.recommend(
            AfterProblem(other_room, 0).frame_at(0))
        assert rendered.shape == (30,)

    def test_recommends_same_cluster_members(self, problem):
        rec = MvAGCRecommender(seed=0)
        rec.fit([problem])
        rec.reset(problem)
        rendered = rec.recommend(problem.frame_at(0))
        clusters = rec._clusters
        target_cluster = clusters[problem.target]
        assert (clusters[rendered] == target_cluster).all()

    def test_fit_validates(self):
        with pytest.raises(ValueError):
            MvAGCRecommender().fit([])


class TestGraFrank:
    def test_training_reduces_bpr_loss(self, problem):
        rec = GraFrankRecommender(epochs=20, seed=0)
        history = rec.fit([problem])
        if history["loss"]:
            assert history["loss"][-1] <= history["loss"][0]

    def test_static_topk(self, problem):
        rec = GraFrankRecommender(epochs=5, seed=0)
        rec.fit([problem])
        rec.reset(problem)
        first = rec.recommend(problem.frame_at(0))
        second = rec.recommend(problem.frame_at(2))
        np.testing.assert_array_equal(first, second)
        assert first.sum() <= problem.max_render

    def test_ranks_friends_highly(self, room, problem):
        """BPR training should score friends above average strangers."""
        rec = GraFrankRecommender(epochs=40, seed=0)
        rec.fit([problem])
        emb = rec._embeddings
        scores = emb @ emb[problem.target]
        friends = room.social.adjacency[problem.target]
        strangers = ~friends
        strangers[problem.target] = False
        if friends.any():
            assert scores[friends].mean() > scores[strangers].mean()


class TestRecurrentBaselines:
    @pytest.mark.parametrize("cls", [DCRNNRecommender, TGCNRecommender])
    def test_recommend_interface(self, cls, problem):
        rec = cls(seed=0)
        rec.reset(problem)
        rendered = rec.recommend(problem.frame_at(0))
        assert rendered.sum() <= problem.max_render
        assert not rendered[problem.target]

    @pytest.mark.parametrize("cls", [DCRNNRecommender, TGCNRecommender])
    def test_fit_reduces_loss(self, cls, train_problems):
        rec = cls(seed=0)
        history = rec.fit(train_problems, epochs=6, restarts=1)
        assert history["loss"][-1] <= history["loss"][0] * 1.05

    def test_fit_validates(self, train_problems):
        with pytest.raises(ValueError):
            DCRNNRecommender().fit([])
        with pytest.raises(ValueError):
            DCRNNRecommender().fit(train_problems, restarts=0)

    def test_reinitialize_changes_parameters(self):
        rec = TGCNRecommender(seed=0)
        before = rec.readout.weight.data.copy()
        rec.reinitialize(4)
        assert not np.allclose(before, rec.readout.weight.data)

    def test_hidden_state_carries_across_steps(self, problem):
        rec = DCRNNRecommender(seed=0)
        rec.reset(problem)
        rec.recommend(problem.frame_at(0))
        state_after_one = rec._hidden.data.copy()
        rec.recommend(problem.frame_at(1))
        assert not np.allclose(state_after_one, rec._hidden.data)


class TestCOMURNet:
    def test_validation(self):
        with pytest.raises(ValueError):
            COMURNetRecommender(rollouts=0)

    def test_zero_occlusion_guarantee(self, room):
        """The hard constraint: recommended avatars never conflict with
        each other nor with physical participants."""
        rec = COMURNetRecommender(rollouts=4, seed=0)
        for target in (0, 5):
            problem = AfterProblem(room, target)
            result = evaluate_episode(problem, rec)
            assert result.occlusion_rate == 0.0

    def test_recommended_set_is_independent(self, problem):
        rec = COMURNetRecommender(rollouts=4, seed=0)
        rec.reset(problem)
        frame = problem.frame_at(0)
        rendered = rec.recommend(frame)
        sub = frame.graph.adjacency[np.ix_(rendered, rendered)]
        assert not sub.any()

    def test_never_recommends_forced_users(self, problem):
        rec = COMURNetRecommender(rollouts=4, seed=0)
        rec.reset(problem)
        frame = problem.frame_at(0)
        rendered = rec.recommend(frame)
        assert not (rendered & frame.forced).any()

    def test_all_rendered_visible(self, problem):
        rec = COMURNetRecommender(rollouts=4, seed=0)
        rec.reset(problem)
        frame = problem.frame_at(0)
        rendered = rec.recommend(frame)
        visible = resolve_visibility(frame.graph, rendered, frame.forced)
        assert (visible[rendered]).all()

    def test_fit_returns_rewards(self, train_problems):
        rec = COMURNetRecommender(rollouts=4, train_episodes=1, seed=0)
        history = rec.fit(train_problems)
        assert len(history["reward"]) > 0

    def test_slower_than_simple_baselines(self, problem):
        comur = COMURNetRecommender(rollouts=8, seed=0)
        fast = NearestRecommender()
        slow_result = evaluate_episode(problem, comur)
        fast_result = evaluate_episode(problem, fast)
        assert slow_result.runtime_ms > fast_result.runtime_ms


class TestOracle:
    def test_no_mutual_occlusion(self, vr_problem):
        rec = OracleStepRecommender()
        rec.reset(vr_problem)
        frame = vr_problem.frame_at(0)
        rendered = rec.recommend(frame)
        sub = frame.graph.adjacency[np.ix_(rendered, rendered)]
        assert not sub.any()

    def test_respects_budget(self, problem):
        rec = OracleStepRecommender()
        rec.reset(problem)
        assert rec.recommend(problem.frame_at(0)).sum() <= problem.max_render

    def test_dominates_random_on_average(self, room):
        oracle = OracleStepRecommender()
        random = RandomRecommender(seed=0)
        targets = [0, 4, 8]
        oracle_scores = [evaluate_episode(AfterProblem(room, t),
                                          oracle).after_utility
                         for t in targets]
        random_scores = [evaluate_episode(AfterProblem(room, t),
                                          random).after_utility
                         for t in targets]
        assert np.mean(oracle_scores) > np.mean(random_scores)
