"""Tests pinning the fair-comparison training protocol.

The paper's comparison hinges on all learned models sharing the loss and
training budget; these tests keep that contract from drifting.
"""

import numpy as np
import pytest

from repro.models import DCRNNRecommender, POSHGNN, TGCNRecommender
from repro.models.poshgnn.loss import POSHGNNLoss, resolve_alpha


class TestSharedLoss:
    def test_all_learned_models_accept_same_fit_signature(self,
                                                          train_problems):
        for model in (POSHGNN(seed=0), DCRNNRecommender(seed=0),
                      TGCNRecommender(seed=0)):
            history = model.fit(train_problems, epochs=2, restarts=1,
                                alpha=0.05, lr=1e-2)
            assert "loss" in history
            assert "train_utility" in history

    def test_alpha_auto_resolves_identically(self, train_problems):
        a = resolve_alpha(train_problems, "auto")
        b = resolve_alpha(train_problems, "auto")
        assert a == b

    def test_loss_is_shared_implementation(self):
        """The baselines import POSHGNN's loss, not a re-implementation."""
        from repro.models.baselines import recurrent
        assert recurrent.POSHGNNLoss is POSHGNNLoss


class TestParameterBudgets:
    def test_models_share_similar_parameter_counts(self):
        """Paper: baselines 'share similar parameters with POSHGNN'."""
        poshgnn = POSHGNN(seed=0).num_parameters()
        dcrnn = DCRNNRecommender(seed=0).num_parameters()
        tgcn = TGCNRecommender(seed=0).num_parameters()
        for count in (dcrnn, tgcn):
            assert 0.3 * poshgnn <= count <= 3.0 * poshgnn

    def test_hidden_dim_is_papers_eight(self):
        assert POSHGNN().hidden_dim == 8
        assert DCRNNRecommender().hidden_dim == 8
        assert TGCNRecommender().hidden_dim == 8


class TestRestartProtocol:
    def test_restart_determinism(self, train_problems):
        a = POSHGNN(seed=0)
        a.fit(train_problems, epochs=3, restarts=2)
        b = POSHGNN(seed=0)
        b.fit(train_problems, epochs=3, restarts=2)
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(),
                                              b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(pa.data, pb.data)

    def test_best_cap_recorded(self, train_problems):
        model = POSHGNN(seed=0)
        model.fit(train_problems, epochs=3, restarts=1)
        assert model.max_preserve in model.preserve_grid

    def test_no_lwp_skips_cap_grid(self, train_problems):
        model = POSHGNN(seed=0, use_lwp=False)
        model.fit(train_problems, epochs=2, restarts=1)
        assert model.max_preserve == 1.0 or not model.use_lwp
