"""Unit tests for POSHGNN's MIA / PDR / LWP modules and loss."""

import numpy as np
import pytest

from repro.models.poshgnn import LWP, MIA, PDR, POSHGNNLoss, \
    preservation_gate
from repro.models.poshgnn.loss import resolve_alpha
from repro.models.poshgnn.mia import row_normalise
from repro.nn import Tensor


def rng():
    return np.random.default_rng(0)


class TestRowNormalise:
    def test_scales_by_mean_degree(self):
        adjacency = np.array([[0.0, 1, 1], [1, 0, 0], [1, 0, 0]])
        out = row_normalise(adjacency)
        mean_degree = adjacency.sum(axis=1).mean()
        np.testing.assert_allclose(out, adjacency / mean_degree)

    def test_empty_graph_unchanged(self):
        adjacency = np.zeros((3, 3))
        np.testing.assert_allclose(row_normalise(adjacency), adjacency)

    def test_preserves_relative_degree(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1:] = adjacency[1:, 0] = 1.0  # star: hub has degree 3
        out = row_normalise(adjacency)
        assert out[0].sum() == pytest.approx(3 * out[1].sum() / 1)


class TestMIA:
    def test_process_shapes(self, problem):
        mia = MIA()
        mia.reset()
        out = mia.process(problem.frame_at(0))
        count = problem.num_users
        assert out.features.shape == (count, 4)
        assert out.delta.shape == (count, 3)
        assert out.mask.shape == (count,)
        assert out.adjacency.shape == (count, count)
        assert out.propagation.shape == (count, count)

    def test_first_step_delta_uses_zero_previous(self, problem):
        mia = MIA()
        mia.reset()
        out = mia.process(problem.frame_at(0))
        degrees = out.adjacency.sum(axis=1)
        scale = max(np.abs(np.column_stack([
            degrees, (out.adjacency @ out.adjacency) @ np.ones(len(degrees))
        ])).max(), 1.0)
        np.testing.assert_allclose(out.delta[:, 1], degrees / scale)

    def test_stateful_across_steps(self, problem):
        mia = MIA()
        mia.reset()
        mia.process(problem.frame_at(0))
        out1 = mia.process(problem.frame_at(1))
        # Gradual scenes: second-step deltas are small.
        assert np.abs(out1.delta[:, 1]).mean() < 1.0

    def test_reset_clears_state(self, problem):
        mia = MIA()
        mia.reset()
        first = mia.process(problem.frame_at(0)).delta.copy()
        mia.process(problem.frame_at(1))
        mia.reset()
        again = mia.process(problem.frame_at(0)).delta
        np.testing.assert_allclose(first, again)

    def test_no_delta_mode(self, problem):
        mia = MIA(use_delta=False)
        mia.reset()
        out = mia.process(problem.frame_at(0))
        np.testing.assert_allclose(out.delta[:, 0], 1.0)
        np.testing.assert_allclose(out.delta[:, 1:], 0.0)

    def test_raw_mode_masks_only_target(self, problem):
        mia = MIA(use_normalised=False)
        mia.reset()
        out = mia.process(problem.frame_at(0))
        assert out.mask[problem.target] == 0.0
        assert out.mask.sum() == problem.num_users - 1


class TestPDR:
    def test_output_shapes_and_range(self, problem):
        pdr = PDR(4, 8, rng())
        frame = problem.frame_at(0)
        adjacency = row_normalise(frame.graph.adjacency_float())
        prototype, hidden = pdr(Tensor(frame.features()), adjacency)
        assert prototype.shape == (problem.num_users,)
        assert hidden.shape == (problem.num_users, 8)
        assert (prototype.data >= 0).all()
        assert (prototype.data <= 1).all()

    def test_gradients_flow(self, problem):
        pdr = PDR(4, 8, rng())
        frame = problem.frame_at(0)
        adjacency = row_normalise(frame.graph.adjacency_float())
        prototype, _hidden = pdr(Tensor(frame.features()), adjacency)
        prototype.sum().backward()
        assert all(p.grad is not None for p in pdr.parameters())


class TestLWP:
    def test_sigma_shape_and_range(self, problem):
        lwp = LWP(4, 3, 8, rng())
        frame = problem.frame_at(0)
        count = problem.num_users
        adjacency = row_normalise(frame.graph.adjacency_float())
        sigma = lwp(Tensor(frame.features()), Tensor(np.zeros((count, 3))),
                    Tensor(np.zeros((count, 8))), Tensor(np.zeros(count)),
                    adjacency)
        assert sigma.shape == (count,)
        assert (sigma.data >= 0).all()
        assert (sigma.data <= 1).all()


class TestPreservationGate:
    def test_full_preservation_returns_previous(self):
        mask = np.ones(3)
        out = preservation_gate(mask, Tensor(np.ones(3)),
                                Tensor(np.array([0.9, 0.8, 0.7])),
                                Tensor(np.array([0.1, 0.2, 0.3])))
        np.testing.assert_allclose(out.data, [0.1, 0.2, 0.3])

    def test_no_preservation_returns_prototype(self):
        mask = np.ones(3)
        out = preservation_gate(mask, Tensor(np.zeros(3)),
                                Tensor(np.array([0.9, 0.8, 0.7])),
                                Tensor(np.array([0.1, 0.2, 0.3])))
        np.testing.assert_allclose(out.data, [0.9, 0.8, 0.7])

    def test_mask_zeroes_entries(self):
        mask = np.array([1.0, 0.0, 1.0])
        out = preservation_gate(mask, Tensor(np.full(3, 0.5)),
                                Tensor(np.ones(3)), Tensor(np.ones(3)))
        assert out.data[1] == 0.0

    def test_convex_mix(self):
        mask = np.ones(1)
        out = preservation_gate(mask, Tensor(np.array([0.25])),
                                Tensor(np.array([1.0])),
                                Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.75])


class TestPOSHGNNLoss:
    def test_validation(self):
        with pytest.raises(ValueError):
            POSHGNNLoss(beta=1.5)
        with pytest.raises(ValueError):
            POSHGNNLoss(alpha=-1.0)

    def test_loss_nonnegative_for_binary_recommendations(self):
        loss_fn = POSHGNNLoss(beta=0.5, alpha=0.1)
        count = 6
        p_hat = np.full(count, 0.5)
        s_hat = np.full(count, 0.5)
        adjacency = np.zeros((count, count))
        r = Tensor(np.array([1.0, 0, 1, 0, 1, 0]))
        loss = loss_fn.step_loss(r, Tensor(np.zeros(count)), p_hat, s_hat,
                                 adjacency)
        # gamma makes the loss positive when nothing is gained fully.
        assert loss.item() >= 0.0

    def test_rendering_preferred_users_lowers_loss(self):
        loss_fn = POSHGNNLoss(beta=0.0, alpha=0.0)
        p_hat = np.array([0.9, 0.1])
        s_hat = np.zeros(2)
        adjacency = np.zeros((2, 2))
        good = loss_fn.step_loss(Tensor(np.array([1.0, 0.0])),
                                 Tensor(np.zeros(2)), p_hat, s_hat, adjacency)
        bad = loss_fn.step_loss(Tensor(np.array([0.0, 1.0])),
                                Tensor(np.zeros(2)), p_hat, s_hat, adjacency)
        assert good.item() < bad.item()

    def test_occlusion_edge_penalised(self):
        loss_fn = POSHGNNLoss(beta=0.0, alpha=1.0)
        p_hat = np.full(2, 0.1)
        s_hat = np.zeros(2)
        conflict = np.array([[0.0, 1.0], [1.0, 0.0]])
        clear = np.zeros((2, 2))
        both = Tensor(np.ones(2))
        with_conflict = loss_fn.step_loss(both, Tensor(np.zeros(2)), p_hat,
                                          s_hat, conflict)
        without = loss_fn.step_loss(both, Tensor(np.zeros(2)), p_hat, s_hat,
                                    clear)
        assert with_conflict.item() > without.item()

    def test_presence_requires_previous_recommendation(self):
        loss_fn = POSHGNNLoss(beta=1.0, alpha=0.0)
        s_hat = np.array([0.8])
        p_hat = np.zeros(1)
        adjacency = np.zeros((1, 1))
        kept = loss_fn.step_loss(Tensor(np.ones(1)), Tensor(np.ones(1)),
                                 p_hat, s_hat, adjacency)
        fresh = loss_fn.step_loss(Tensor(np.ones(1)), Tensor(np.zeros(1)),
                                  p_hat, s_hat, adjacency)
        assert kept.item() < fresh.item()

    def test_episode_loss_sums_steps(self):
        loss_fn = POSHGNNLoss(beta=0.5, alpha=0.01)
        count = 3
        recs = [Tensor(np.full(count, 0.5)) for _ in range(4)]
        p_hats = [np.full(count, 0.5)] * 4
        s_hats = [np.full(count, 0.5)] * 4
        adjacencies = [np.zeros((count, count))] * 4
        total = loss_fn.episode_loss(recs, p_hats, s_hats, adjacencies)
        assert np.isfinite(total.item())

    def test_episode_loss_rejects_empty(self):
        with pytest.raises(ValueError):
            POSHGNNLoss().episode_loss([], [], [], [])

    def test_gradient_direction_increases_good_user(self):
        loss_fn = POSHGNNLoss(beta=0.0, alpha=0.0)
        r = Tensor(np.array([0.5, 0.5]), requires_grad=True)
        loss = loss_fn.step_loss(r, Tensor(np.zeros(2)),
                                 np.array([0.9, 0.0]), np.zeros(2),
                                 np.zeros((2, 2)))
        loss.backward()
        assert r.grad[0] < 0      # descending increases r for good user
        assert r.grad[1] == pytest.approx(0.0, abs=1e-12)


class TestResolveAlpha:
    def test_explicit_float_passthrough(self, train_problems):
        assert resolve_alpha(train_problems, 0.07) == 0.07

    def test_auto_scales_with_degree(self, train_problems):
        alpha = resolve_alpha(train_problems, "auto", alpha0=0.5)
        mid = train_problems[0].horizon // 2
        degree = train_problems[0].adjacency(mid).sum(axis=1).mean()
        assert alpha <= 0.5
        assert alpha == pytest.approx(0.5 / max(1.0, degree), rel=0.5)

    def test_alpha0_scales_linearly(self, train_problems):
        a1 = resolve_alpha(train_problems, "auto", alpha0=1.0)
        a2 = resolve_alpha(train_problems, "auto", alpha0=2.0)
        assert a2 == pytest.approx(2 * a1)
