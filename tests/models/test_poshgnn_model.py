"""Integration tests for the full POSHGNN recommender and trainer."""

import numpy as np
import pytest

from repro.core import AfterProblem, evaluate_episode
from repro.models import POSHGNN, RandomRecommender
from repro.models.poshgnn import POSHGNNTrainer


class TestPOSHGNNInterface:
    def test_names_reflect_ablation(self):
        assert POSHGNN().name == "POSHGNN"
        assert POSHGNN(use_lwp=False).name == "PDR w/ MIA"
        assert POSHGNN(use_lwp=False, use_mia=False).name == "Only PDR"

    def test_recommend_respects_budget_and_mask(self, problem):
        model = POSHGNN(seed=0)
        model.reset(problem)
        frame = problem.frame_at(0)
        rendered = model.recommend(frame)
        assert rendered.sum() <= problem.max_render
        assert not rendered[problem.target]
        assert not rendered[frame.mask <= 0].any()

    def test_reset_clears_recurrent_state(self, problem):
        model = POSHGNN(seed=0)
        model.reset(problem)
        first = model.recommend(problem.frame_at(0)).copy()
        model.recommend(problem.frame_at(1))
        model.reset(problem)
        again = model.recommend(problem.frame_at(0))
        np.testing.assert_array_equal(first, again)

    def test_step_outputs_in_unit_interval(self, problem):
        model = POSHGNN(seed=0)
        model.reset(problem)
        hidden, previous = model.initial_state(problem.num_users)
        rec, new_hidden, _ = model.step(problem.frame_at(0), hidden, previous)
        assert (rec.data >= 0).all()
        assert (rec.data <= 1).all()
        assert new_hidden.shape == (problem.num_users, model.hidden_dim)

    def test_reinitialize_changes_parameters(self):
        model = POSHGNN(seed=0)
        before = model.pdr.conv1.self_weight.data.copy()
        model.reinitialize(99)
        assert not np.allclose(before, model.pdr.conv1.self_weight.data)

    def test_ablation_variant_without_lwp_has_no_lwp_params(self):
        full = POSHGNN(seed=0)
        bare = POSHGNN(seed=0, use_lwp=False)
        assert bare.num_parameters() < full.num_parameters()


class TestTraining:
    def test_fit_reduces_loss(self, train_problems):
        model = POSHGNN(seed=0)
        history = model.fit(train_problems, epochs=8, restarts=1)
        assert history["loss"][-1] <= history["loss"][0]

    def test_fit_returns_train_utility(self, train_problems):
        model = POSHGNN(seed=0)
        history = model.fit(train_problems, epochs=4, restarts=1)
        assert history["train_utility"] >= 0.0

    def test_trained_model_beats_random(self, room, train_problems):
        model = POSHGNN(seed=0)
        model.fit(train_problems, epochs=25, restarts=1)
        problem = AfterProblem(room, target=3)
        ours = evaluate_episode(problem, model).after_utility
        random = evaluate_episode(problem, RandomRecommender()).after_utility
        assert ours > random

    def test_restart_selection_keeps_best(self, train_problems):
        model = POSHGNN(seed=0)
        history = model.fit(train_problems, epochs=5, restarts=2)
        from repro.core import evaluate_episode as ev
        reproduced = np.mean([ev(p, model).after_utility
                              for p in train_problems])
        assert reproduced == pytest.approx(history["train_utility"], rel=0.05)

    def test_fit_validates_restarts(self, train_problems):
        with pytest.raises(ValueError):
            POSHGNN(seed=0).fit(train_problems, restarts=0)

    def test_trainer_validates(self):
        model = POSHGNN(seed=0)
        with pytest.raises(ValueError):
            POSHGNNTrainer(model, epochs=0)
        with pytest.raises(ValueError):
            POSHGNNTrainer(model, bptt_window=0)
        with pytest.raises(ValueError):
            POSHGNNTrainer(model).train([])

    def test_truncated_bptt_window_sizes(self, train_problems):
        model = POSHGNN(seed=0)
        trainer = POSHGNNTrainer(model, epochs=2, bptt_window=3)
        history = trainer.train(train_problems[:1])
        assert len(history["loss"]) == 2

    def test_no_lwp_variant_trains(self, train_problems):
        model = POSHGNN(seed=0, use_lwp=False)
        history = model.fit(train_problems, epochs=5, restarts=1)
        assert np.isfinite(history["loss"]).all()

    def test_no_mia_variant_trains(self, train_problems):
        model = POSHGNN(seed=0, use_lwp=False, use_mia=False)
        history = model.fit(train_problems, epochs=5, restarts=1)
        assert np.isfinite(history["loss"]).all()


class TestContinuity:
    def test_lwp_improves_continuity(self, room):
        """The preservation gate yields more stable displays than
        re-solving from scratch (the paper's C3 motivation)."""
        problem = AfterProblem(room, target=2)
        full = POSHGNN(seed=0)
        full.fit([problem], epochs=20, restarts=1)
        bare = POSHGNN(seed=0, use_lwp=False)
        bare.fit([problem], epochs=20, restarts=1)
        full_result = evaluate_episode(problem, full)
        bare_result = evaluate_episode(problem, bare)
        assert full_result.continuity() >= bare_result.continuity() - 0.15

    def test_serialization_roundtrip(self, problem, tmp_path):
        from repro.nn import load_module, save_module
        model = POSHGNN(seed=0)
        path = tmp_path / "poshgnn.npz"
        save_module(model, path)
        other = POSHGNN(seed=5)
        load_module(other, path)
        model.reset(problem)
        other.reset(problem)
        np.testing.assert_array_equal(
            model.recommend(problem.frame_at(0)),
            other.recommend(problem.frame_at(0)))
