"""Tests for interval / circular-arc MWIS solvers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import OcclusionGraphConverter
from repro.mwis import (
    arcs_from_occlusion_graph,
    is_independent_set,
    set_weight,
    solve_circular_arc_mwis,
    solve_interval_mwis,
    solve_mwis_exact,
)


class TestIntervalMWIS:
    def test_empty(self):
        value, chosen = solve_interval_mwis([], np.array([]))
        assert value == 0.0
        assert chosen == []

    def test_disjoint_takes_all(self):
        intervals = [(0, 1), (2, 3), (4, 5)]
        value, chosen = solve_interval_mwis(intervals, np.ones(3))
        assert value == 3.0
        assert sorted(chosen) == [0, 1, 2]

    def test_nested_takes_heavier(self):
        intervals = [(0, 10), (2, 3)]
        value, chosen = solve_interval_mwis(intervals, np.array([5.0, 1.0]))
        assert value == 5.0
        assert chosen == [0]

    def test_chain_optimal(self):
        # (0,2),(1,3),(2,4): touching counts as overlap, optimum is middle
        # alone (weight 4) vs ends (1+1=2).
        intervals = [(0, 2), (1, 3), (2, 4)]
        value, chosen = solve_interval_mwis(intervals, np.array([1.0, 4.0, 1.0]))
        assert value == 4.0
        assert chosen == [1]

    def test_touching_endpoints_conflict(self):
        value, chosen = solve_interval_mwis([(0, 1), (1, 2)], np.ones(2))
        assert value == 1.0
        assert len(chosen) == 1

    def test_negative_weights_ignored(self):
        value, chosen = solve_interval_mwis([(0, 1)], np.array([-1.0]))
        assert value == 0.0
        assert chosen == []

    def test_selected_indices_are_original(self):
        intervals = [(5, 6), (0, 1)]
        _value, chosen = solve_interval_mwis(intervals, np.array([1.0, 2.0]))
        assert sorted(chosen) == [0, 1]


def arcs_conflict(a, b):
    """Reference predicate: do two (start,end) arcs on the circle overlap?"""
    def covered(arc):
        s, e = arc[0] % (2 * math.pi), arc[1] % (2 * math.pi)
        if s <= e:
            return [(s, e)]
        return [(s, 2 * math.pi), (0.0, e)]

    for s1, e1 in covered(a):
        for s2, e2 in covered(b):
            if s1 <= e2 and s2 <= e1:
                return True
    return False


def brute_force_circular(arcs, weights):
    import itertools
    n = len(arcs)
    best = 0.0
    for bits in itertools.product([0, 1], repeat=n):
        chosen = [i for i in range(n) if bits[i]]
        if any(arcs_conflict(arcs[i], arcs[j])
               for k, i in enumerate(chosen) for j in chosen[k + 1:]):
            continue
        best = max(best, sum(weights[i] for i in chosen))
    return best


class TestCircularArcMWIS:
    def test_empty(self):
        value, chosen = solve_circular_arc_mwis([], np.array([]))
        assert value == 0.0

    def test_non_wrapping_arcs(self):
        arcs = [(0.0, 0.5), (1.0, 1.5), (2.0, 2.5)]
        value, chosen = solve_circular_arc_mwis(arcs, np.ones(3))
        assert value == pytest.approx(3.0)

    def test_wraparound_arc_chosen_when_heavy(self):
        arcs = [(6.0, 0.5), (1.0, 1.5)]  # first wraps across 2 pi
        value, chosen = solve_circular_arc_mwis(arcs, np.array([5.0, 1.0]))
        assert value == pytest.approx(6.0)
        assert sorted(chosen) == [0, 1]

    def test_full_conflict_picks_heaviest(self):
        arcs = [(0.0, 3.0), (2.0, 5.0), (4.0, 1.0)]  # mutually overlapping
        value, chosen = solve_circular_arc_mwis(arcs, np.array([1.0, 2.0, 3.0]))
        assert value == pytest.approx(3.0)
        assert chosen == [2]

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 7
        starts = rng.uniform(0, 2 * math.pi, n)
        widths = rng.uniform(0.1, 1.5, n)
        arcs = [(s, (s + w) % (2 * math.pi)) for s, w in zip(starts, widths)]
        weights = rng.uniform(0.1, 1.0, n)
        value, chosen = solve_circular_arc_mwis(arcs, weights)
        assert value == pytest.approx(brute_force_circular(arcs, weights), abs=1e-9)
        # Chosen set must be conflict-free.
        for k, i in enumerate(chosen):
            for j in chosen[k + 1:]:
                assert not arcs_conflict(arcs[i], arcs[j])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_never_exceeds_exact_on_derived_graph(self, seed):
        """Circular-arc optimum == exact MWIS on the intersection graph."""
        rng = np.random.default_rng(seed)
        n = 8
        starts = rng.uniform(0, 2 * math.pi, n)
        widths = rng.uniform(0.05, 1.0, n)
        arcs = [(s, (s + w) % (2 * math.pi)) for s, w in zip(starts, widths)]
        weights = rng.uniform(0.1, 1.0, n)

        adjacency = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for j in range(i + 1, n):
                if arcs_conflict(arcs[i], arcs[j]):
                    adjacency[i, j] = adjacency[j, i] = True
        exact = set_weight(weights, solve_mwis_exact(adjacency, weights))
        value, _ = solve_circular_arc_mwis(arcs, weights)
        assert value == pytest.approx(exact, abs=1e-9)


class TestOcclusionGraphBridge:
    def test_arcs_from_occlusion_graph(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0], [0.0, 3.0]])
        graph = OcclusionGraphConverter().convert(positions, target=0)
        arcs, mask = arcs_from_occlusion_graph(graph)
        assert len(arcs) == 4
        assert not mask[0]
        assert mask[1:].all()

    def test_optimal_deocclusion_on_scene(self):
        """On the collinear scene the circular-arc optimum avoids the
        occluded far user when the near one is heavier."""
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0], [0.0, 3.0]])
        graph = OcclusionGraphConverter().convert(positions, target=0)
        arcs, mask = arcs_from_occlusion_graph(graph)
        weights = np.array([0.0, 1.0, 0.4, 0.8])
        candidate_idx = np.nonzero(mask)[0]
        value, chosen = solve_circular_arc_mwis(
            [arcs[i] for i in candidate_idx], weights[candidate_idx])
        chosen_users = {int(candidate_idx[j]) for j in chosen}
        assert chosen_users == {1, 3}
        assert value == pytest.approx(1.8)
