"""Property-based tests for the MWIS solver family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mwis import (
    improve_local_search,
    is_independent_set,
    set_weight,
    solve_circular_arc_mwis,
    solve_interval_mwis,
    solve_mwis_exact,
    solve_mwis_greedy,
)


@st.composite
def graph_strategy(draw, max_nodes=12):
    n = draw(st.integers(2, max_nodes))
    seed = draw(st.integers(0, 100_000))
    p = draw(st.floats(0.0, 0.8))
    rng = np.random.default_rng(seed)
    adjacency = np.triu(rng.random((n, n)) < p, 1)
    adjacency = adjacency | adjacency.T
    weights = rng.uniform(0.0, 1.0, n)
    return adjacency, weights


@settings(max_examples=60, deadline=None)
@given(graph_strategy())
def test_exact_result_is_independent_and_dominates_greedy(graph):
    adjacency, weights = graph
    exact = solve_mwis_exact(adjacency, weights)
    greedy = solve_mwis_greedy(adjacency, weights)
    assert is_independent_set(adjacency, exact)
    assert is_independent_set(adjacency, greedy)
    assert set_weight(weights, exact) >= set_weight(weights, greedy) - 1e-12


@settings(max_examples=60, deadline=None)
@given(graph_strategy())
def test_local_search_monotone_improvement(graph):
    adjacency, weights = graph
    start = solve_mwis_greedy(adjacency, weights)
    improved = improve_local_search(adjacency, weights, start, max_rounds=2)
    assert is_independent_set(adjacency, improved)
    assert set_weight(weights, improved) >= set_weight(weights, start) - 1e-12


@settings(max_examples=60, deadline=None)
@given(graph_strategy())
def test_exact_invariant_to_weight_scaling(graph):
    """Scaling all weights by a positive constant preserves the optimum
    set's weight ratio."""
    adjacency, weights = graph
    base = set_weight(weights, solve_mwis_exact(adjacency, weights))
    scaled = set_weight(weights * 3.0,
                        solve_mwis_exact(adjacency, weights * 3.0))
    assert scaled == (3.0 * base if base > 0 else 0.0) or \
        abs(scaled - 3.0 * base) < 1e-9


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 8), st.integers(0, 100_000))
def test_interval_solution_never_exceeds_total(n, seed):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 10, n)
    ends = starts + rng.uniform(0.1, 3.0, n)
    weights = rng.uniform(0, 1, n)
    value, chosen = solve_interval_mwis(list(zip(starts, ends)), weights)
    assert 0.0 <= value <= weights.sum() + 1e-12
    assert value == pytest.approx(sum(weights[i] for i in chosen))


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 8), st.integers(0, 100_000))
def test_circular_arc_chosen_set_is_conflict_free(n, seed):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 2 * np.pi, n)
    widths = rng.uniform(0.05, 2.0, n)
    arcs = [(s, (s + w) % (2 * np.pi)) for s, w in zip(starts, widths)]
    weights = rng.uniform(0, 1, n)
    value, chosen = solve_circular_arc_mwis(arcs, weights)

    def covered(arc):
        s, e = arc[0] % (2 * np.pi), arc[1] % (2 * np.pi)
        return [(s, e)] if s <= e else [(s, 2 * np.pi), (0.0, e)]

    for k, i in enumerate(chosen):
        for j in chosen[k + 1:]:
            for s1, e1 in covered(arcs[i]):
                for s2, e2 in covered(arcs[j]):
                    assert not (s1 <= e2 and s2 <= e1)
    assert value == pytest.approx(sum(weights[i] for i in chosen))
