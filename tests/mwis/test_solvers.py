"""Tests for the MWIS solver suite."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mwis import (
    improve_local_search,
    is_independent_set,
    set_weight,
    solve_interval_mwis,
    solve_mwis,
    solve_mwis_exact,
    solve_mwis_greedy,
)


def brute_force_mwis(adjacency, weights):
    """Reference optimum by enumeration (tiny graphs only)."""
    n = len(weights)
    best = 0.0
    for bits in itertools.product([False, True], repeat=n):
        sel = np.array(bits)
        if is_independent_set(adjacency, sel):
            best = max(best, set_weight(weights, sel))
    return best


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    adjacency = rng.random((n, n)) < p
    adjacency = np.triu(adjacency, 1)
    adjacency = adjacency | adjacency.T
    weights = rng.uniform(0.1, 1.0, n)
    return adjacency, weights


class TestExact:
    def test_empty_graph_takes_all_positive(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        weights = np.array([1.0, -1.0, 2.0, 0.0])
        sel = solve_mwis_exact(adjacency, weights)
        np.testing.assert_array_equal(sel, [True, False, True, False])

    def test_triangle_picks_heaviest(self):
        adjacency = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=bool)
        sel = solve_mwis_exact(adjacency, np.array([1.0, 3.0, 2.0]))
        np.testing.assert_array_equal(sel, [False, True, False])

    def test_path_graph_alternation(self):
        # Path 0-1-2-3 with uniform weights: optimum {0, 2} or {1, 3} or {0,3}.
        adjacency = np.zeros((4, 4), dtype=bool)
        for i in range(3):
            adjacency[i, i + 1] = adjacency[i + 1, i] = True
        sel = solve_mwis_exact(adjacency, np.ones(4))
        assert is_independent_set(adjacency, sel)
        assert sel.sum() == 2

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        adjacency, weights = random_graph(9, 0.35, seed)
        sel = solve_mwis_exact(adjacency, weights)
        assert is_independent_set(adjacency, sel)
        assert set_weight(weights, sel) == pytest.approx(
            brute_force_mwis(adjacency, weights))

    def test_node_limit_guard(self):
        adjacency = np.zeros((70, 70), dtype=bool)
        with pytest.raises(ValueError):
            solve_mwis_exact(adjacency, np.ones(70))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_mwis_exact(np.zeros((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            solve_mwis_exact(np.zeros((2, 2)), np.ones(3))


class TestGreedy:
    @pytest.mark.parametrize("seed", range(6))
    def test_returns_independent_set(self, seed):
        adjacency, weights = random_graph(30, 0.2, seed)
        sel = solve_mwis_greedy(adjacency, weights)
        assert is_independent_set(adjacency, sel)

    def test_exact_on_empty_graph(self):
        adjacency = np.zeros((5, 5), dtype=bool)
        sel = solve_mwis_greedy(adjacency, np.ones(5))
        assert sel.all()

    def test_ignores_nonpositive_weights(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        sel = solve_mwis_greedy(adjacency, np.array([1.0, 0.0, -2.0]))
        np.testing.assert_array_equal(sel, [True, False, False])

    @pytest.mark.parametrize("seed", range(6))
    def test_within_half_of_optimum_on_small(self, seed):
        adjacency, weights = random_graph(10, 0.3, seed)
        greedy_w = set_weight(weights, solve_mwis_greedy(adjacency, weights))
        optimum = brute_force_mwis(adjacency, weights)
        assert greedy_w >= 0.5 * optimum


class TestLocalSearch:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_worse_than_input(self, seed):
        adjacency, weights = random_graph(20, 0.25, seed)
        start = solve_mwis_greedy(adjacency, weights)
        improved = improve_local_search(adjacency, weights, start)
        assert is_independent_set(adjacency, improved)
        assert set_weight(weights, improved) >= set_weight(weights, start) - 1e-12

    def test_inserts_free_vertices(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        start = np.array([True, False, False])
        improved = improve_local_search(adjacency, np.ones(3), start)
        assert improved.all()

    def test_one_two_swap_found(self):
        # Star: center 0 (weight 3) vs two leaves (weight 2 each).
        adjacency = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=bool)
        weights = np.array([3.0, 2.0, 2.0])
        start = np.array([True, False, False])
        improved = improve_local_search(adjacency, weights, start)
        assert set_weight(weights, improved) == pytest.approx(4.0)


class TestDispatcher:
    def test_small_uses_exact(self):
        adjacency, weights = random_graph(8, 0.3, 0)
        sel = solve_mwis(adjacency, weights)
        assert set_weight(weights, sel) == pytest.approx(
            brute_force_mwis(adjacency, weights))

    def test_large_returns_independent(self):
        adjacency, weights = random_graph(60, 0.1, 1)
        sel = solve_mwis(adjacency, weights)
        assert is_independent_set(adjacency, sel)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(0, 10_000))
    def test_property_independent_and_positive(self, n, seed):
        adjacency, weights = random_graph(n, 0.4, seed)
        sel = solve_mwis(adjacency, weights)
        assert is_independent_set(adjacency, sel)
        assert set_weight(weights, sel) >= max(0.0, weights.max() * 0)
