"""Property-based tests (hypothesis) for the autograd engine.

Every analytic gradient must match a central-difference estimate on random
inputs, and algebraic identities (linearity, product rule) must hold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor

FLOATS = st.floats(min_value=-3.0, max_value=3.0,
                   allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=max_side),
        elements=FLOATS,
    )


def central_diff(fn, x, eps=1e-5):
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        hi = fn(x)
        flat_x[i] = orig - eps
        lo = fn(x)
        flat_x[i] = orig
        flat_g[i] = (hi - lo) / (2 * eps)
    return grad


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_of_squares_gradient(x):
    t = Tensor(x, requires_grad=True)
    (t * t).sum().backward()
    np.testing.assert_allclose(t.grad, 2 * x, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_tanh_gradient_matches_numeric(x):
    t = Tensor(x, requires_grad=True)
    t.tanh().sum().backward()
    numeric = central_diff(lambda v: np.tanh(v).sum(), x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sigmoid_gradient_matches_numeric(x):
    t = Tensor(x, requires_grad=True)
    t.sigmoid().sum().backward()
    numeric = central_diff(lambda v: (1 / (1 + np.exp(-v))).sum(), x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays(), FLOATS, FLOATS)
def test_linearity_of_gradient(x, a, b):
    """grad(a*f + b*g) == a*grad(f) + b*grad(g) for f=sum(x^2), g=sum(x)."""
    t1 = Tensor(x, requires_grad=True)
    ((t1 * t1).sum() * a + t1.sum() * b).backward()
    expected = a * 2 * x + b
    np.testing.assert_allclose(t1.grad, expected, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_product_rule(x):
    """d/dx sum(x * sigmoid(x)) == sigmoid(x) + x*sigmoid'(x)."""
    t = Tensor(x, requires_grad=True)
    (t * t.sigmoid()).sum().backward()
    s = 1 / (1 + np.exp(-x))
    np.testing.assert_allclose(t.grad, s + x * s * (1 - s), atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=FLOATS),
    arrays(np.float64, (4, 2), elements=FLOATS),
)
def test_matmul_gradients_match_numeric(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta @ tb).sum().backward()
    np.testing.assert_allclose(
        ta.grad, central_diff(lambda v: (v @ b).sum(), a.copy()), atol=1e-5)
    np.testing.assert_allclose(
        tb.grad, central_diff(lambda v: (a @ v).sum(), b.copy()), atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_detach_blocks_gradient(x):
    t = Tensor(x, requires_grad=True)
    (t.detach() * 5.0).sum()  # no graph
    out = (t * 1.0).sum()
    out.backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_mean_is_sum_over_count(x):
    t1 = Tensor(x, requires_grad=True)
    t1.mean().backward()
    np.testing.assert_allclose(t1.grad, np.full_like(x, 1.0 / x.size))


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.integers(2, 6).map(lambda n: (n,)), elements=FLOATS))
def test_second_use_accumulates(x):
    """Using a tensor twice doubles its gradient contribution."""
    t = Tensor(x, requires_grad=True)
    (t.sum() + t.sum()).backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 2.0))
