"""Unit tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestActivations:
    def test_relu_values(self):
        out = F.relu([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_symmetry(self):
        out = F.sigmoid([-2.0, 0.0, 2.0])
        np.testing.assert_allclose(out.data[0] + out.data[2], 1.0, atol=1e-12)
        assert out.data[1] == pytest.approx(0.5)

    def test_tanh_range(self):
        out = F.tanh(np.linspace(-5, 5, 11))
        assert (np.abs(out.data) < 1.0).all()

    def test_softplus_positive_and_asymptotic(self):
        out = F.softplus([-50.0, -1.0, 0.0, 50.0])
        assert (out.data >= 0).all()
        assert out.data[1] > 0
        assert out.data[3] == pytest.approx(50.0, abs=1e-6)
        assert out.data[2] == pytest.approx(np.log(2.0))

    def test_softplus_gradient(self):
        x = Tensor([0.3], requires_grad=True)
        F.softplus(x).sum().backward()
        expected = 1.0 / (1.0 + np.exp(-0.3))
        np.testing.assert_allclose(x.grad, [expected], atol=1e-8)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        out = F.softmax(rng.standard_normal((4, 5)), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_invariant_to_shift(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(
            F.softmax(x).data, F.softmax(x + 100.0).data, atol=1e-12)

    def test_extreme_logits_stable(self):
        out = F.softmax(np.array([1e4, -1e4]))
        assert np.isfinite(out.data).all()

    def test_gradient_flows(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        (F.softmax(x) * np.array([1.0, 0.0, 0.0])).sum().backward()
        assert x.grad is not None
        # Softmax Jacobian row: p0*(delta - p)
        p = F.softmax(x.data).data
        expected = p[0] * (np.eye(3)[0] - p)
        np.testing.assert_allclose(x.grad, expected, atol=1e-8)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.array([0.5, 1.5, -0.5])
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-9)


class TestConcatenateStack:
    def test_concatenate_values(self):
        out = F.concatenate([Tensor([1.0, 2.0]), Tensor([3.0])])
        np.testing.assert_allclose(out.data, [1, 2, 3])

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert F.concatenate([a, b], axis=1).shape == (2, 5)

    def test_concatenate_gradient_routing(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (F.concatenate([a, b]) * np.array([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_concatenate_axis1_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        weight = np.arange(6.0).reshape(2, 3)
        (F.concatenate([a, b], axis=1) * weight).sum().backward()
        np.testing.assert_allclose(a.grad, weight[:, :2])
        np.testing.assert_allclose(b.grad, weight[:, 2:])

    def test_stack_shape_and_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = F.stack([a, b])
        assert out.shape == (2, 2)
        (out * np.array([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])


class TestLosses:
    def test_bce_perfect_prediction_near_zero(self):
        loss = F.binary_cross_entropy([1e-9, 1 - 1e-9], [0.0, 1.0])
        assert loss.item() < 1e-6

    def test_bce_wrong_prediction_large(self):
        loss = F.binary_cross_entropy([0.99, 0.01], [0.0, 1.0])
        assert loss.item() > 3.0

    def test_bce_gradient_direction(self):
        pred = Tensor([0.7], requires_grad=True)
        F.binary_cross_entropy(pred, [1.0]).backward()
        assert pred.grad[0] < 0  # increasing pred reduces loss

    def test_mse_zero_when_equal(self):
        assert F.mse_loss([1.0, 2.0], [1.0, 2.0]).item() == 0.0

    def test_mse_gradient(self):
        pred = Tensor([3.0], requires_grad=True)
        F.mse_loss(pred, [1.0]).backward()
        np.testing.assert_allclose(pred.grad, [4.0])


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = np.ones(100)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x)

    def test_zero_rate_is_identity(self):
        x = np.ones(100)
        out = F.dropout(x, 0.0, np.random.default_rng(0), training=True)
        np.testing.assert_allclose(out.data, x)

    def test_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = np.ones(20000)
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_drops_roughly_rate_fraction(self):
        rng = np.random.default_rng(1)
        out = F.dropout(np.ones(20000), 0.3, rng, training=True)
        assert (out.data == 0).mean() == pytest.approx(0.3, abs=0.02)


class TestHelpers:
    def test_dot(self):
        assert F.dot([1.0, 2.0], [3.0, 4.0]).item() == 11.0

    def test_matmul_wrapper(self):
        out = F.matmul(np.eye(2), np.array([[2.0], [3.0]]))
        np.testing.assert_allclose(out.data, [[2.0], [3.0]])

    def test_sum_mean_wrappers(self):
        assert F.sum([1.0, 2.0, 3.0]).item() == 6.0
        assert F.mean([1.0, 2.0, 3.0]).item() == 2.0
