"""Numerical gradient checks for the autograd ops the models lean on.

Each analytic gradient is compared against a central finite-difference
estimate of the same scalar loss.  Covered: matmul (both operands),
broadcast addition (gradient summed down to the broadcast shape),
sigmoid/relu activations, and aggregation by a constant adjacency matrix
(``Tensor(adjacency) @ h`` — the GNN propagation pattern from
``repro.nn.layers``, where the adjacency itself carries no gradient).
"""

import numpy as np
import pytest

from repro.nn import Tensor


def central_diff(fn, x, eps=1e-6):
    """Central finite differences of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        hi = fn(x)
        flat_x[i] = orig - eps
        lo = fn(x)
        flat_x[i] = orig
        flat_g[i] = (hi - lo) / (2 * eps)
    return grad


def assert_gradcheck(make_loss, *arrays, atol=1e-6):
    """Backprop each input and compare with central differences."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    make_loss(*tensors).backward()
    for slot, (tensor, array) in enumerate(zip(tensors, arrays)):
        def numeric(x, slot=slot):
            values = [a.copy() for a in arrays]
            values[slot] = x
            return make_loss(*[Tensor(v) for v in values]).item()
        expected = central_diff(numeric, array.copy())
        np.testing.assert_allclose(tensor.grad, expected, atol=atol,
                                   err_msg=f"input {slot}")


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestMatmul:
    def test_matrix_matrix(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        assert_gradcheck(lambda x, y: (x @ y).sum(), a, b)

    def test_matrix_vector(self, rng):
        a = rng.normal(size=(3, 4))
        v = rng.normal(size=4)
        assert_gradcheck(lambda x, y: (x @ y).sum(), a, v)

    def test_nonuniform_upstream_gradient(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3, 3))
        assert_gradcheck(lambda x, y: ((x @ y) * (x @ y)).sum(), a, b,
                         atol=1e-5)


class TestBroadcastAdd:
    def test_row_broadcast_sums_down(self, rng):
        matrix = rng.normal(size=(4, 3))
        row = rng.normal(size=(1, 3))
        assert_gradcheck(lambda m, r: ((m + r) * (m + r)).sum(), matrix, row,
                         atol=1e-5)

    def test_scalar_shape_broadcast(self, rng):
        matrix = rng.normal(size=(3, 2))
        bias = rng.normal(size=(1, 1))
        assert_gradcheck(lambda m, b: (m + b).sum(), matrix, bias)

    def test_vector_against_matrix(self, rng):
        matrix = rng.normal(size=(5, 4))
        vector = rng.normal(size=4)
        assert_gradcheck(lambda m, v: ((m + v) * m).sum(), matrix, vector,
                         atol=1e-5)


class TestActivations:
    def test_sigmoid(self, rng):
        x = rng.normal(size=(4, 3))
        assert_gradcheck(lambda t: t.sigmoid().sum(), x)

    def test_sigmoid_chained(self, rng):
        x = rng.normal(size=6)
        assert_gradcheck(lambda t: (t.sigmoid() * t).sum(), x, atol=1e-5)

    def test_relu_away_from_kink(self, rng):
        x = rng.normal(size=(5, 2))
        # Keep samples off |x| < 1e-3 so the finite difference never
        # straddles the kink at zero.
        x = np.where(np.abs(x) < 1e-3, 0.5, x)
        assert_gradcheck(lambda t: (t.relu() * t).sum(), x, atol=1e-5)


class TestConstantAdjacencyAggregation:
    def test_constant_matmul_tensor(self, rng):
        adjacency = Tensor((rng.random((5, 5)) < 0.4).astype(np.float64))
        features = rng.normal(size=(5, 3))

        def loss(h):
            aggregated = adjacency @ h
            return (aggregated * aggregated).sum()

        assert_gradcheck(loss, features, atol=1e-5)

    def test_normalised_propagation(self, rng):
        adjacency = (rng.random((6, 6)) < 0.5).astype(np.float64)
        np.fill_diagonal(adjacency, 1.0)
        adjacency /= adjacency.sum(axis=1, keepdims=True)
        features = rng.normal(size=(6, 2))
        assert_gradcheck(lambda h: (Tensor(adjacency) @ h).sigmoid().sum(),
                         features, atol=1e-5)

    def test_adjacency_receives_no_gradient_graph(self, rng):
        adjacency = Tensor(np.eye(4))
        h = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (adjacency @ h).sum().backward()
        np.testing.assert_allclose(h.grad, np.ones((4, 2)))
        assert adjacency.grad is None
