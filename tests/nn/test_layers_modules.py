"""Unit tests for modules, layers, optimisers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AttentionFusion,
    DiffusionConv,
    GraphConv,
    GraphGRUCell,
    GRUCell,
    Linear,
    load_module,
    MLP,
    Module,
    Parameter,
    save_module,
    Sequential,
    SGD,
    Tensor,
    clip_grad_norm,
)
from repro.nn import functional as F


def rng():
    return np.random.default_rng(42)


class TestModuleSystem:
    def test_parameter_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.sub = Linear(2, 2, rng())

        net = Net()
        names = [name for name, _ in net.named_parameters()]
        assert "w" in names
        assert "sub.weight" in names
        assert "sub.bias" in names

    def test_num_parameters(self):
        lin = Linear(3, 4, rng())
        assert lin.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears_all(self):
        lin = Linear(2, 2, rng())
        out = lin(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_train_eval_recursive(self):
        seq = Sequential(Linear(2, 2, rng()), Linear(2, 2, rng()))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng())
        b = Linear(3, 2, np.random.default_rng(7))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(3, 2, rng())
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_load_state_dict_key_mismatch(self):
        a = Linear(3, 2, rng())
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros(1)})

    def test_parameter_survives_no_grad_construction(self):
        from repro.nn import no_grad
        with no_grad():
            p = Parameter(np.ones(2))
        assert p.requires_grad


class TestLinearAndMLP:
    def test_linear_shapes(self):
        lin = Linear(5, 3, rng())
        assert lin(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_linear_no_bias(self):
        lin = Linear(2, 2, rng(), bias=False)
        assert lin.bias is None
        zero_out = lin(Tensor(np.zeros((1, 2))))
        np.testing.assert_allclose(zero_out.data, 0.0)

    def test_linear_learns_identity(self):
        generator = rng()
        lin = Linear(2, 2, generator)
        opt = Adam(lin.parameters(), lr=0.05)
        x = generator.standard_normal((64, 2))
        for _ in range(300):
            opt.zero_grad()
            loss = F.mse_loss(lin(Tensor(x)), Tensor(x))
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3

    def test_mlp_output_activation(self):
        mlp = MLP([4, 8, 1], rng(), out_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(0).standard_normal((10, 4))))
        assert ((out.data >= 0) & (out.data <= 1)).all()

    def test_mlp_rejects_short_dims(self):
        with pytest.raises(ValueError):
            MLP([4], rng())

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], rng(), out_activation="gelu")

    def test_sequential_indexing(self):
        seq = Sequential(Linear(2, 2, rng()), Linear(2, 2, rng()))
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)


class TestGraphConv:
    def test_output_shape(self):
        conv = GraphConv(4, 8, rng())
        adjacency = np.zeros((5, 5))
        out = conv(Tensor(np.ones((5, 4))), adjacency)
        assert out.shape == (5, 8)

    def test_isolated_node_ignores_neighbours(self):
        conv = GraphConv(2, 2, rng(), activation="none")
        adjacency = np.array([[0.0, 1.0, 0], [1.0, 0, 0], [0, 0, 0]])
        x = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        out = conv(Tensor(x), adjacency).data
        # Node 2 output depends only on its own features.
        expected = x[2] @ conv.self_weight.data + conv.bias.data
        np.testing.assert_allclose(out[2], expected, atol=1e-12)

    def test_neighbour_aggregation_is_sum(self):
        conv = GraphConv(1, 1, rng(), activation="none")
        adjacency = np.array([[0.0, 1, 1], [1, 0, 0], [1, 0, 0]])
        x = np.array([[0.0], [2.0], [3.0]])
        out = conv(Tensor(x), adjacency).data
        expected0 = 0.0 * conv.self_weight.data[0, 0] \
            + 5.0 * conv.neigh_weight.data[0, 0] + conv.bias.data[0]
        assert out[0, 0] == pytest.approx(expected0)

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            GraphConv(2, 2, rng(), activation="swish")

    def test_gradients_reach_both_weights(self):
        conv = GraphConv(2, 2, rng())
        adjacency = np.array([[0.0, 1], [1, 0]])
        conv(Tensor(np.ones((2, 2))), adjacency).sum().backward()
        assert conv.self_weight.grad is not None
        assert conv.neigh_weight.grad is not None


class TestDiffusionConv:
    def test_transition_matrix_rows_sum_to_one(self):
        adjacency = np.array([[0.0, 1, 1], [1, 0, 0], [1, 0, 0]])
        p = DiffusionConv.transition_matrix(adjacency)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(3))

    def test_transition_matrix_isolated_row_zero(self):
        adjacency = np.zeros((2, 2))
        p = DiffusionConv.transition_matrix(adjacency)
        np.testing.assert_allclose(p, 0.0)

    def test_output_shape(self):
        conv = DiffusionConv(3, 5, k_hops=2, rng=rng())
        adjacency = np.ones((4, 4)) - np.eye(4)
        out = conv(Tensor(np.ones((4, 3))), adjacency)
        assert out.shape == (4, 5)

    def test_khops_parameters_registered(self):
        conv = DiffusionConv(2, 2, k_hops=3, rng=rng())
        names = {name for name, _ in conv.named_parameters()}
        assert {"weight_fwd0", "weight_fwd2", "weight_bwd1"} <= names


class TestRecurrentCells:
    def test_gru_cell_shape_and_state(self):
        cell = GRUCell(4, 8, rng())
        h = cell.initial_state(5)
        assert h.shape == (5, 8)
        h2 = cell(Tensor(np.ones((5, 4))), h)
        assert h2.shape == (5, 8)

    def test_gru_interpolates_between_state_and_candidate(self):
        cell = GRUCell(1, 4, rng())
        h = Tensor(np.full((1, 4), 10.0))
        out = cell(Tensor(np.zeros((1, 1))), h).data
        # tanh candidate is in (-1, 1); the gate convexly mixes, so the
        # output must stay within [min(candidate), max(h)].
        assert (out <= 10.0).all()
        assert (out >= -1.0).all()

    def test_graph_gru_cell_shape(self):
        cell = GraphGRUCell(3, 6, rng())
        adjacency = np.ones((4, 4)) - np.eye(4)
        h = cell.initial_state(4)
        out = cell(Tensor(np.ones((4, 3))), h, adjacency)
        assert out.shape == (4, 6)

    def test_bptt_through_cells(self):
        cell = GRUCell(2, 3, rng())
        h = cell.initial_state(2)
        x = Tensor(np.ones((2, 2)))
        for _ in range(5):
            h = cell(x, h)
        h.sum().backward()
        grads = [p.grad for p in cell.parameters()]
        assert all(g is not None for g in grads)


class TestAttentionFusion:
    def test_output_is_convex_combination(self):
        fusion = AttentionFusion(3, rng())
        a = Tensor(np.zeros((4, 3)))
        b = Tensor(np.ones((4, 3)))
        out = fusion([a, b]).data
        assert ((out >= 0.0) & (out <= 1.0)).all()

    def test_single_facet_identity(self):
        fusion = AttentionFusion(2, rng())
        a = np.random.default_rng(0).standard_normal((5, 2))
        np.testing.assert_allclose(fusion([Tensor(a)]).data, a, atol=1e-12)


class TestOptimisers:
    def _quadratic_descent(self, make_optimizer):
        p = Parameter(np.array([5.0]))
        opt = make_optimizer([p])
        for _ in range(400):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        return abs(p.data[0])

    def test_sgd_converges(self):
        assert self._quadratic_descent(lambda ps: SGD(ps, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descent(lambda ps: Adam(ps, lr=0.1)) < 1e-3

    def test_adam_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        for _ in range(100):
            opt.zero_grad()
            (p * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated: should be a no-op
        np.testing.assert_allclose(p.data, [1.0])

    def test_clip_grad_norm(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([10.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(10.0)
        np.testing.assert_allclose(p.grad, [1.0])

    def test_clip_grad_norm_under_limit_untouched(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.5])


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        a = MLP([3, 4, 1], rng())
        b = MLP([3, 4, 1], np.random.default_rng(99))
        path = tmp_path / "model.npz"
        save_module(a, path)
        load_module(b, path)
        x = Tensor(np.random.default_rng(0).standard_normal((5, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)
