"""Edge-case and failure-injection tests for the nn engine."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    GraphConv,
    Linear,
    MLP,
    Parameter,
    SGD,
    Tensor,
    init,
    load_module,
    save_module,
)
from repro.nn import functional as F


class TestInitializers:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        w = init.glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_he_bounds(self):
        rng = np.random.default_rng(0)
        w = init.he_uniform((64, 32), rng)
        limit = np.sqrt(6.0 / 32)
        assert np.abs(w).max() <= limit

    def test_uniform_limit(self):
        rng = np.random.default_rng(0)
        w = init.uniform((20,), rng, limit=0.05)
        assert np.abs(w).max() <= 0.05

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 2)), 0.0)

    def test_orthogonal_columns(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((8, 8), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_orthogonal_rectangular(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((6, 3), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(3), atol=1e-10)

    def test_orthogonal_rejects_1d(self):
        with pytest.raises(ValueError):
            init.orthogonal((5,), np.random.default_rng(0))

    def test_deterministic_under_seed(self):
        a = init.glorot_uniform((4, 4), np.random.default_rng(5))
        b = init.glorot_uniform((4, 4), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestNumericalRobustness:
    def test_exp_overflow_clipped(self):
        out = Tensor(np.array([1000.0])).exp()
        assert np.isfinite(out.data).all()

    def test_log_of_negative_floored(self):
        out = Tensor(np.array([-5.0])).log()
        assert np.isfinite(out.data).all()

    def test_sqrt_of_negative_is_zero(self):
        out = Tensor(np.array([-4.0])).sqrt()
        assert out.data[0] == 0.0

    def test_division_by_small_number_gradient_finite(self):
        x = Tensor(np.array([1e-8]), requires_grad=True)
        (1.0 / x).sum().backward()
        assert np.isfinite(x.grad).all()

    def test_softmax_single_element(self):
        out = F.softmax(np.array([3.0]))
        np.testing.assert_allclose(out.data, [1.0])

    def test_bce_at_exact_zero_and_one(self):
        loss = F.binary_cross_entropy([0.0, 1.0], [0.0, 1.0])
        assert np.isfinite(loss.item())

    def test_empty_gradient_accumulation_is_isolated(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)


class TestOptimizerEdgeCases:
    def test_adam_handles_zero_gradient(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.zeros(1)
        opt.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_sgd_multiple_parameter_groups(self):
        params = [Parameter(np.ones(2)), Parameter(np.ones(3))]
        opt = SGD(params, lr=0.5)
        for p in params:
            p.grad = np.ones_like(p.data)
        opt.step()
        np.testing.assert_allclose(params[0].data, 0.5)
        np.testing.assert_allclose(params[1].data, 0.5)

    def test_adam_bias_correction_first_step(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # First Adam step moves by ~lr regardless of gradient scale.
        assert abs(p.data[0] + 0.1) < 1e-6


class TestModuleEdgeCases:
    def test_empty_sequential_network(self):
        from repro.nn import Sequential
        seq = Sequential()
        x = Tensor(np.ones(3))
        np.testing.assert_allclose(seq(x).data, x.data)

    def test_graphconv_on_single_node(self):
        conv = GraphConv(2, 2, np.random.default_rng(0))
        out = conv(Tensor(np.ones((1, 2))), np.zeros((1, 1)))
        assert out.shape == (1, 2)

    def test_linear_one_dimensional_input(self):
        lin = Linear(3, 2, np.random.default_rng(0))
        out = lin(Tensor(np.ones(3)))
        assert out.shape == (2,)

    def test_save_to_nested_directory(self, tmp_path):
        sub = tmp_path / "a" / "b"
        sub.mkdir(parents=True)
        mlp = MLP([2, 2], np.random.default_rng(0))
        path = sub / "model.npz"
        save_module(mlp, path)
        load_module(MLP([2, 2], np.random.default_rng(1)), path)

    def test_load_corrupted_state_fails_loudly(self, tmp_path):
        mlp = MLP([2, 2], np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_module(mlp, path)
        other = MLP([3, 3], np.random.default_rng(0))  # wrong shapes
        with pytest.raises((KeyError, ValueError)):
            load_module(other, path)
