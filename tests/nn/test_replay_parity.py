"""Property tests: recorded-graph replay is byte-equal to eager autograd.

For randomized shapes, seeds and graph structures, a ``ReplayFunction``
replaying its compiled graph must produce the exact same loss, aux
outputs and parameter gradients as a fresh eager build — not merely
close, bit-identical.  Shape changes must fall back and re-record.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Parameter, ReplayFunction

FLOATS = st.floats(min_value=-2.0, max_value=2.0,
                   allow_nan=False, allow_infinity=False)


def _window_build(w1, w2):
    """A small BPTT-shaped graph: two steps, carried hidden state."""

    def build(x0, x1, hidden):
        for x in (x0, x1):
            hidden = (x @ w1 + hidden @ w2).tanh()
        loss = (hidden * hidden).sum() + hidden.abs().sum() * 0.5
        return loss, [hidden]

    return build


def _run_eager(seed, batch, features, hidden_dim):
    """Ground truth: fresh eager ReplayFunction, never replayed."""
    rng = np.random.default_rng(seed)
    w1 = Parameter(rng.normal(size=(features, hidden_dim)))
    w2 = Parameter(rng.normal(size=(hidden_dim, hidden_dim)))
    inputs = [rng.normal(size=(batch, features)) for _ in range(2)]
    carry = rng.normal(size=(batch, hidden_dim))
    fn = ReplayFunction(_window_build(w1, w2))
    loss, aux = fn.forward(*inputs, carry)
    fn.backward()
    return loss, aux[0], w1.grad.copy(), w2.grad.copy()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       batch=st.integers(1, 4),
       features=st.integers(1, 5),
       hidden_dim=st.integers(1, 4),
       replays=st.integers(1, 3))
def test_replay_gradients_byte_equal_to_eager(seed, batch, features,
                                              hidden_dim, replays):
    loss_ref, aux_ref, g1_ref, g2_ref = _run_eager(
        seed, batch, features, hidden_dim)

    rng = np.random.default_rng(seed)
    w1 = Parameter(rng.normal(size=(features, hidden_dim)))
    w2 = Parameter(rng.normal(size=(hidden_dim, hidden_dim)))
    inputs = [rng.normal(size=(batch, features)) for _ in range(2)]
    carry = rng.normal(size=(batch, hidden_dim))
    fn = ReplayFunction(_window_build(w1, w2))

    fn.forward(*inputs, carry)   # record step
    fn.backward()
    for _ in range(replays):     # replayed steps must not drift
        w1.zero_grad()
        w2.zero_grad()
        loss, aux = fn.forward(*inputs, carry)
        fn.backward()
        assert loss == loss_ref
        np.testing.assert_array_equal(aux[0], aux_ref)
        np.testing.assert_array_equal(w1.grad, g1_ref)
        np.testing.assert_array_equal(w2.grad, g2_ref)
    assert fn.stats["records"] == 1
    assert fn.stats["replays"] == replays


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       shapes=st.lists(st.tuples(st.integers(1, 4), st.integers(1, 4)),
                       min_size=2, max_size=5))
def test_shape_changes_trigger_fallback_and_rerecord(seed, shapes):
    rng = np.random.default_rng(seed)
    features = 3
    w1 = Parameter(rng.normal(size=(features, 2)))
    w2 = Parameter(rng.normal(size=(2, 2)))
    fn = ReplayFunction(_window_build(w1, w2))

    signatures = set()
    records = replays = fallbacks = 0
    for batch, _ in shapes:
        x0 = rng.normal(size=(batch, features))
        x1 = rng.normal(size=(batch, features))
        carry = np.zeros((batch, 2))
        fn.forward(x0, x1, carry)
        fn.backward()
        if batch in signatures:
            replays += 1
        else:
            records += 1
            if signatures:
                fallbacks += 1
            signatures.add(batch)
    assert fn.stats["records"] == records
    assert fn.stats["replays"] == replays
    assert fn.stats["fallbacks"] == fallbacks
    assert not fn.stats["volatile"]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), batch=st.integers(1, 4))
def test_rerecorded_signature_still_matches_eager(seed, batch):
    """After a fallback re-record, the NEW signature replays byte-equal."""
    other = batch % 4 + 1
    loss_ref, aux_ref, g1_ref, g2_ref = _run_eager(seed, other, 3, 2)

    rng = np.random.default_rng(seed)
    w1 = Parameter(rng.normal(size=(3, 2)))
    w2 = Parameter(rng.normal(size=(2, 2)))
    inputs = [rng.normal(size=(other, 3)) for _ in range(2)]
    carry = rng.normal(size=(other, 2))
    fn = ReplayFunction(_window_build(w1, w2))

    # Record an unrelated signature first, forcing a fallback re-record.
    fn.forward(np.zeros((batch, 3)), np.zeros((batch, 3)),
               np.zeros((batch, 2)))
    fn.backward()
    for _ in range(2):
        w1.zero_grad()
        w2.zero_grad()
        loss, aux = fn.forward(*inputs, carry)
        fn.backward()
        assert loss == loss_ref
        np.testing.assert_array_equal(aux[0], aux_ref)
        np.testing.assert_array_equal(w1.grad, g1_ref)
        np.testing.assert_array_equal(w2.grad, g2_ref)
