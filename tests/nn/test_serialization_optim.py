"""Serialization path-normalisation, atomic writes, nested-state
flattening, and the non-finite clip_grad_norm regression."""

import os

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Parameter,
    atomic_savez,
    clip_grad_norm,
    flatten_state,
    load_module,
    normalize_npz_path,
    save_module,
    unflatten_state,
)


# ----------------------------------------------------------------------
# save_module/load_module suffix round-trip (regression: np.savez appends
# ".npz", so un-suffixed paths used to FileNotFoundError on load)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("save_name,load_name", [
    ("ckpt", "ckpt"),
    ("ckpt", "ckpt.npz"),
    ("ckpt.npz", "ckpt"),
    ("ckpt.npz", "ckpt.npz"),
])
def test_save_load_module_suffix_variants(tmp_path, save_name, load_name):
    source = MLP([3, 4, 2], np.random.default_rng(0))
    target = MLP([3, 4, 2], np.random.default_rng(1))
    save_module(source, tmp_path / save_name)
    load_module(target, tmp_path / load_name)
    for (name_a, param_a), (name_b, param_b) in zip(
            source.named_parameters(), target.named_parameters()):
        assert name_a == name_b
        assert np.array_equal(param_a.data, param_b.data)
    # exactly one file, with the suffix, on disk
    assert sorted(os.listdir(tmp_path)) == ["ckpt.npz"]


def test_normalize_npz_path():
    assert normalize_npz_path("a/b") == "a/b.npz"
    assert normalize_npz_path("a/b.npz") == "a/b.npz"


def test_save_module_returns_final_path(tmp_path):
    module = MLP([2, 2], np.random.default_rng(0))
    path = save_module(module, tmp_path / "weights")
    assert path.endswith("weights.npz")
    assert os.path.exists(path)


# ----------------------------------------------------------------------
# atomic_savez
# ----------------------------------------------------------------------
def test_atomic_savez_overwrites_without_temporaries(tmp_path):
    path = tmp_path / "data"
    atomic_savez(path, x=np.zeros(2))
    atomic_savez(path, x=np.ones(2))
    with np.load(str(path) + ".npz") as archive:
        assert np.array_equal(archive["x"], np.ones(2))
    assert sorted(os.listdir(tmp_path)) == ["data.npz"]


# ----------------------------------------------------------------------
# flatten/unflatten nested optimiser-style state
# ----------------------------------------------------------------------
def test_flatten_unflatten_round_trip():
    tree = {
        "hyper": {"lr": 0.01, "steps": 7},
        "slots": {"m": [np.zeros((2, 3)), np.ones(4)],
                  "v": [np.full((2, 3), 2.0), np.full(4, 3.0)]},
    }
    rebuilt = unflatten_state(flatten_state(tree))
    assert rebuilt["hyper"]["lr"] == 0.01
    assert rebuilt["hyper"]["steps"] == 7
    for key in ("m", "v"):
        assert isinstance(rebuilt["slots"][key], list)
        for left, right in zip(tree["slots"][key], rebuilt["slots"][key]):
            assert np.array_equal(left, right)


def test_flatten_rejects_illegal_keys():
    with pytest.raises(ValueError):
        flatten_state({"a/b": 1.0})
    with pytest.raises(ValueError):
        flatten_state({"#0": 1.0})


def test_flatten_long_lists_order_preserved():
    tree = {"values": [np.full(1, float(i)) for i in range(12)]}
    rebuilt = unflatten_state(flatten_state(tree))
    assert [float(v[0]) for v in rebuilt["values"]] == [
        float(i) for i in range(12)]


# ----------------------------------------------------------------------
# clip_grad_norm non-finite regression: a NaN norm used to compare False
# against max_norm and silently pass the poisoned gradients through.
# ----------------------------------------------------------------------
def test_clip_grad_norm_returns_nonfinite_norm_untouched():
    good = Parameter(np.zeros(3))
    good.grad = np.full(3, 1e3)
    bad = Parameter(np.zeros(2))
    bad.grad = np.array([np.nan, 1.0])
    norm = clip_grad_norm([good, bad], max_norm=1.0)
    assert not np.isfinite(norm)
    # no poisoned rescale was applied to the healthy gradient
    assert np.array_equal(good.grad, np.full(3, 1e3))


def test_clip_grad_norm_error_if_nonfinite():
    param = Parameter(np.zeros(2))
    param.grad = np.array([np.inf, 0.0])
    with pytest.raises(ValueError, match="non-finite"):
        clip_grad_norm([param], max_norm=1.0, error_if_nonfinite=True)


def test_clip_grad_norm_finite_unchanged_behaviour():
    param = Parameter(np.zeros(4))
    param.grad = np.full(4, 2.0)
    norm = clip_grad_norm([param], max_norm=1.0)
    assert norm == pytest.approx(4.0)
    assert np.linalg.norm(param.grad) == pytest.approx(1.0)
