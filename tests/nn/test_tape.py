"""Tape mechanics: recording, replay, fallback, fusion, thread-local mode.

Byte-equality suites live in ``test_replay_parity.py``; this file covers
the state machine around them — what gets recorded, when replay falls
back to eager, and that grad mode is per-thread.
"""

import threading

import numpy as np
import pytest

from repro.nn import (
    Parameter,
    ReplayFunction,
    Tape,
    Tensor,
    is_grad_enabled,
    no_grad,
)
from repro.nn import functional as F


class TestThreadLocalGradMode:
    def test_no_grad_on_one_thread_does_not_leak(self):
        """Regression: ``no_grad`` used to flip a process-global flag."""
        inside = threading.Event()
        release = threading.Event()
        seen = {}

        def holder():
            with no_grad():
                inside.set()
                release.wait(timeout=10.0)

        def builder():
            inside.wait(timeout=10.0)
            x = Tensor(np.ones(3), requires_grad=True)
            y = (x * 2.0).sum()
            seen["enabled"] = is_grad_enabled()
            seen["requires_grad"] = y.requires_grad
            release.set()

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=builder)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert seen == {"enabled": True, "requires_grad": True}
        assert is_grad_enabled()

    def test_no_grad_restores_on_exit(self):
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor(np.ones(2), requires_grad=True)
            assert not x.requires_grad
        assert is_grad_enabled()


class TestTape:
    def test_records_grad_nodes(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with Tape() as tape:
            ((x * 2.0) + 1.0).sum()
        assert len(tape.nodes) == 3

    def test_watch_tracks_non_grad_inputs(self):
        x = Tensor(np.ones(3))
        with Tape() as tape:
            tape.watch(x)
            (x * 2.0).sum()
        assert len(tape.nodes) == 2

    def test_unwatched_constants_not_recorded(self):
        with Tape() as tape:
            (Tensor(np.ones(3)) * 2.0).sum()
        assert len(tape.nodes) == 0

    def test_nesting_raises(self):
        with Tape():
            with pytest.raises(RuntimeError):
                with Tape():
                    pass


class TestReplayFunction:
    @staticmethod
    def _make(replay_param):
        def build(x):
            hidden = (x @ replay_param).tanh()
            return (hidden * hidden).sum(), [hidden]
        return ReplayFunction(build)

    def test_record_then_replay_counters(self):
        param = Parameter(np.linspace(-1.0, 1.0, 12).reshape(4, 3))
        fn = self._make(param)
        x = np.linspace(0.0, 1.0, 8).reshape(2, 4)
        for _ in range(3):
            fn.forward(x)
            fn.backward()
        assert fn.stats["records"] == 1
        assert fn.stats["replays"] == 2
        assert fn.stats["fallbacks"] == 0

    def test_replay_matches_eager_bitwise(self):
        param = Parameter(np.linspace(-1.0, 1.0, 12).reshape(4, 3))
        fn = self._make(param)
        x = np.linspace(0.0, 1.0, 8).reshape(2, 4)

        param.zero_grad()
        loss_rec, aux_rec = fn.forward(x)
        fn.backward()
        grad_rec = param.grad.copy()

        param.zero_grad()
        loss_rep, aux_rep = fn.forward(x)
        fn.backward()
        assert loss_rep == loss_rec
        np.testing.assert_array_equal(aux_rep[0], aux_rec[0])
        np.testing.assert_array_equal(param.grad, grad_rec)

    def test_shape_change_triggers_fallback_rerecording(self):
        param = Parameter(np.linspace(-1.0, 1.0, 12).reshape(4, 3))
        fn = self._make(param)
        fn.forward(np.ones((2, 4)))
        fn.backward()
        fn.forward(np.ones((5, 4)))   # new signature -> re-record
        fn.backward()
        assert fn.stats["records"] == 2
        assert fn.stats["fallbacks"] == 1
        fn.forward(np.ones((2, 4)))   # original signature still cached
        assert fn.stats["replays"] == 1

    def test_dropout_marks_volatile_and_stays_eager(self):
        param = Parameter(np.ones((4, 3)))
        rng = np.random.default_rng(0)

        def build(x):
            return (F.dropout(x @ param, 0.5, rng) ** 2.0).sum(), []

        fn = ReplayFunction(build)
        fn.forward(np.ones((2, 4)))
        fn.backward()
        assert fn.stats["volatile"]
        assert fn.stats["volatile_reason"] == "dropout"
        fn.forward(np.ones((2, 4)))
        fn.backward()
        assert fn.stats["replays"] == 0
        assert fn.stats["eager_steps"] == 1

    def test_data_dependent_indexing_marks_volatile(self):
        param = Parameter(np.ones(4))

        def build(x):
            scaled = x * param
            return scaled[np.array([0, 2])].sum(), []

        fn = ReplayFunction(build)
        fn.forward(np.ones(4))
        fn.backward()
        assert fn.stats["volatile"]
        assert "getitem" in fn.stats["volatile_reason"]

    def test_elementwise_chains_fuse(self):
        param = Parameter(np.linspace(-1.0, 1.0, 8))

        def build(x):
            return ((x * param).tanh().sigmoid() * 2.0 + 1.0).sum(), []

        fn = ReplayFunction(build)
        fn.forward(np.ones(8))
        fn.backward()
        assert fn.stats["fused_chains"] >= 1
        assert fn.stats["instructions"] < fn.stats["recorded_nodes"]
        # Fused replay still matches the eager recording bit-for-bit.
        param.zero_grad()
        loss_rec, _ = fn.forward(np.ones(8))
        fn.backward()
        grad_rec = param.grad.copy()
        param.zero_grad()
        loss_rep, _ = fn.forward(np.ones(8))
        fn.backward()
        assert loss_rep == loss_rec
        np.testing.assert_array_equal(param.grad, grad_rec)

    def test_loss_only_build_supported(self):
        param = Parameter(np.ones(3))
        fn = ReplayFunction(lambda x: (x * param).sum())
        loss, aux = fn.forward(np.ones(3))
        fn.backward()
        assert aux == []
        assert loss == 3.0
        np.testing.assert_array_equal(param.grad, np.ones(3))
