"""Gradcheck every registered tape primitive against central differences.

The registry-driven layout makes the coverage self-enforcing: a newly
registered primitive fails ``test_every_primitive_has_a_case`` until a
finite-difference case is added here.
"""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.tape import PRIMITIVES
from repro.nn.tensor import amax_const

from .test_gradcheck import assert_gradcheck


def _rng():
    return np.random.default_rng(7)


def _away_from(x, bad, margin):
    """Push samples at least ``margin`` away from each value in ``bad``."""
    for value in bad:
        close = np.abs(x - value) < margin
        x = np.where(close, value + margin * np.sign(x - value + 0.5), x)
    return x


# name -> (make_loss, list-of-input-arrays, atol); nondiff primitives are
# exercised separately below.
CASES = {
    "add": lambda rng: (
        lambda a, b: ((a + b) * (a + b)).sum(),
        [rng.normal(size=(3, 4)), rng.normal(size=(1, 4))], 1e-5),
    "neg": lambda rng: (
        lambda a: ((-a) * (-a) + (-a)).sum(),
        [rng.normal(size=(2, 3))], 1e-5),
    "mul": lambda rng: (
        lambda a, b: (a * b * a).sum(),
        [rng.normal(size=(4,)), rng.normal(size=(4,))], 1e-5),
    "div": lambda rng: (
        lambda a, b: (a / b).sum(),
        [rng.normal(size=(3, 2)), 0.5 + np.abs(rng.normal(size=(3, 2)))],
        1e-5),
    "pow": lambda rng: (
        lambda a: (a ** 3.0).sum(),
        [rng.normal(size=(5,))], 1e-4),
    "matmul": lambda rng: (
        lambda a, b: ((a @ b) * (a @ b)).sum(),
        [rng.normal(size=(3, 4)), rng.normal(size=(4, 2))], 1e-5),
    "transpose": lambda rng: (
        lambda a: (a.T @ a).sum(),
        [rng.normal(size=(3, 2))], 1e-5),
    "reshape": lambda rng: (
        lambda a: (a.reshape(2, 6) * a.reshape(2, 6)).sum(),
        [rng.normal(size=(3, 4))], 1e-5),
    "getitem": lambda rng: (
        lambda a: (a[1:3, ::2] * a[1:3, ::2]).sum(),
        [rng.normal(size=(4, 5))], 1e-5),
    "sum": lambda rng: (
        lambda a: (a.sum(axis=1, keepdims=True) * a).sum(),
        [rng.normal(size=(3, 4))], 1e-5),
    "max": lambda rng: (
        lambda a: (a.max(axis=1) * a.max(axis=1)).sum(),
        # Well-separated entries so the argmax never flips under eps.
        [np.arange(12.0).reshape(3, 4) + _rng().normal(size=(3, 4)) * 0.1],
        1e-5),
    "relu": lambda rng: (
        lambda a: (a.relu() * a).sum(),
        [_away_from(rng.normal(size=(4, 3)), [0.0], 1e-3)], 1e-5),
    "sigmoid": lambda rng: (
        lambda a: a.sigmoid().sum(),
        [rng.normal(size=(3, 3))], 1e-5),
    "tanh": lambda rng: (
        lambda a: (a.tanh() * a).sum(),
        [rng.normal(size=(6,))], 1e-5),
    "exp": lambda rng: (
        lambda a: a.exp().sum(),
        [rng.normal(size=(2, 4))], 1e-4),
    "log": lambda rng: (
        lambda a: a.log().sum(),
        [0.5 + np.abs(rng.normal(size=(3, 3)))], 1e-5),
    "sqrt": lambda rng: (
        lambda a: a.sqrt().sum(),
        [0.5 + np.abs(rng.normal(size=(5,)))], 1e-5),
    "abs": lambda rng: (
        lambda a: (a.abs() * a.abs()).sum(),
        [_away_from(rng.normal(size=(4,)), [0.0], 1e-3)], 1e-5),
    "clip": lambda rng: (
        lambda a: (a.clip(-1.0, 1.0) * a.clip(-1.0, 1.0)).sum(),
        [_away_from(rng.normal(size=(3, 4)), [-1.0, 1.0], 1e-3)], 1e-5),
    "concatenate": lambda rng: (
        lambda a, b: (F.concatenate([a, b], axis=1)
                      * F.concatenate([a, b], axis=1)).sum(),
        [rng.normal(size=(3, 2)), rng.normal(size=(3, 4))], 1e-5),
    "stack": lambda rng: (
        lambda a, b: (F.stack([a, b], axis=0)
                      * F.stack([a, b], axis=0)).sum(),
        [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))], 1e-5),
}

NONDIFF = {"amax_const"}


def test_every_primitive_has_a_case():
    assert set(PRIMITIVES) == set(CASES) | NONDIFF


@pytest.mark.parametrize("name", sorted(CASES))
def test_primitive_gradcheck(name):
    make_loss, arrays, atol = CASES[name](_rng())
    assert_gradcheck(make_loss, *arrays, atol=atol)


def test_amax_const_is_a_stop_gradient():
    x = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
    shift = amax_const(x, axis=-1)
    np.testing.assert_array_equal(shift.data,
                                  x.data.max(axis=-1, keepdims=True))
    assert not shift.requires_grad
    # The shift contributes no gradient: d/dx sum(x - amax(x)) == 1.
    (x - shift).sum().backward()
    np.testing.assert_array_equal(x.grad, np.ones_like(x.data))
