"""Unit tests for the autograd core (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at numpy point x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_construction_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_as_tensor_idempotent(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_rejects_vector(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]).item()

    def test_detach_is_constant(self):
        a = Tensor([1.0], requires_grad=True)
        assert not a.detach().requires_grad

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-6.0 / 9.0])

    def test_pow_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_neg_and_sub(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([4.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_rsub_and_rdiv_with_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (10.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-10.0 / 4.0])

    def test_broadcast_add_reduces_grad(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones((2,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 2)
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_broadcast_mul_keepdim_axis(self):
        a = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        b = Tensor(np.ones((3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3, 1)
        np.testing.assert_allclose(b.grad[:, 0], a.data.sum(axis=1))

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        (a + a + a).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0])


class TestMatmulGradients:
    def test_matmul_2d_2d(self):
        rng = np.random.default_rng(0)
        a_val = rng.standard_normal((3, 4))
        b_val = rng.standard_normal((4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(
            a.grad, numerical_grad(lambda x: (x @ b_val).sum(), a_val), atol=1e-5)
        np.testing.assert_allclose(
            b.grad, numerical_grad(lambda x: (a_val @ x).sum(), b_val), atol=1e-5)

    def test_matmul_1d_2d(self):
        rng = np.random.default_rng(1)
        a_val = rng.standard_normal(4)
        b_val = rng.standard_normal((4, 3))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(
            a.grad, numerical_grad(lambda x: (x @ b_val).sum(), a_val), atol=1e-5)
        np.testing.assert_allclose(
            b.grad, numerical_grad(lambda x: (a_val @ x).sum(), b_val), atol=1e-5)

    def test_matmul_2d_1d(self):
        rng = np.random.default_rng(2)
        a_val = rng.standard_normal((3, 4))
        b_val = rng.standard_normal(4)
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(
            a.grad, numerical_grad(lambda x: (x @ b_val).sum(), a_val), atol=1e-5)
        np.testing.assert_allclose(
            b.grad, numerical_grad(lambda x: (a_val @ x).sum(), b_val), atol=1e-5)

    def test_matmul_1d_1d(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_constant_matmul_variable(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = Tensor([[1.0], [2.0]], requires_grad=True)
        (Tensor(adjacency) @ x).sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0], [1.0]])

    def test_transpose_backward(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        scale = Tensor(np.arange(6.0).reshape(3, 2))
        (a.T * scale).sum().backward()
        np.testing.assert_allclose(a.grad, scale.data.T)


class TestShapesAndIndexing:
    def test_reshape_backward(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        (a.reshape(2, 3) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(6, 2.0))

    def test_getitem_slice_backward(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1, 0, 0])

    def test_getitem_fancy_index_repeats_accumulate(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2, 0, 1, 0])

    def test_getitem_2d_column(self):
        a = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        a[:, 1].sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [0, 1], [0, 1]])


class TestReductions:
    def test_sum_axis_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a.sum(axis=0) * np.array([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [[1, 2, 3], [1, 2, 3]])

    def test_mean_backward(self):
        a = Tensor(np.ones(4), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.25))

    def test_max_backward_unique(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_max_backward_ties_split(self):
        a = Tensor([5.0, 5.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["relu", "sigmoid", "tanh", "exp", "sqrt", "abs"])
    def test_matches_numerical_gradient(self, name):
        rng = np.random.default_rng(7)
        x_val = rng.uniform(0.3, 2.0, size=5)  # positive: safe for sqrt/abs
        x = Tensor(x_val, requires_grad=True)
        getattr(x, name)().sum().backward()

        def scalar(v):
            vv = v.copy()
            if name == "relu":
                return np.maximum(vv, 0).sum()
            if name == "sigmoid":
                return (1 / (1 + np.exp(-vv))).sum()
            if name == "tanh":
                return np.tanh(vv).sum()
            if name == "exp":
                return np.exp(vv).sum()
            if name == "sqrt":
                return np.sqrt(vv).sum()
            return np.abs(vv).sum()

        np.testing.assert_allclose(x.grad, numerical_grad(scalar, x_val), atol=1e-4)

    def test_log_floors_at_eps(self):
        x = Tensor([0.0], requires_grad=True)
        out = x.log()
        assert np.isfinite(out.data).all()

    def test_clip_gradient_masks_boundaries(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-1000.0, 1000.0])
        out = x.sigmoid()
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)


class TestBackwardMechanics:
    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_nonscalar_with_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_on_exit(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (a * 2).requires_grad

    def test_diamond_graph_gradient(self):
        # f = (a*b) + (a+b); df/da = b+1, df/db = a+1
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        ((a * b) + (a + b)).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])
        np.testing.assert_allclose(b.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
