"""Remaining-surface tests for small Tensor utilities."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


class TestMiscSurface:
    def test_numpy_returns_same_buffer(self):
        t = Tensor([1.0, 2.0])
        assert t.numpy() is t.data

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_is_grad_enabled_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nests(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_radd_rmul_scalars(self):
        t = Tensor([2.0], requires_grad=True)
        (3.0 + t).sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])
        t.zero_grad()
        (3.0 * t).sum().backward()
        np.testing.assert_allclose(t.grad, [3.0])

    def test_rmatmul_with_numpy_left_operand(self):
        t = Tensor(np.eye(2), requires_grad=True)
        out = np.array([[1.0, 2.0]]) @ t
        out.sum().backward()
        assert t.grad is not None

    def test_as_tensor_from_scalar(self):
        t = as_tensor(3.0)
        assert t.item() == 3.0

    def test_requires_grad_suppressed_inside_no_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad
