"""Shared fixtures for observability tests: a tiny room + episodes."""

import pytest

from repro.core import AfterProblem
from repro.datasets import RoomConfig, generate_timik_room


@pytest.fixture(scope="session")
def room():
    """Tiny short-horizon room so training-backed tests stay fast."""
    return generate_timik_room(RoomConfig(num_users=12, num_steps=6), seed=0)


@pytest.fixture(scope="session")
def problems(room):
    return [AfterProblem(room, t) for t in (0, 1)]
