"""Structured run events: JSONL log, guard sink, trainer integration."""

import json
import os

import pytest

from repro.models import POSHGNN
from repro.models.poshgnn.trainer import POSHGNNTrainer
from repro.obs import EVENT_SCHEMA_VERSION, EventLog, read_events
from repro.training import (
    MANIFEST_SCHEMA_VERSION,
    DivergenceGuard,
    NonFiniteSignal,
    RunManifest,
)


class TestEventLog:
    def test_in_memory_records(self):
        log = EventLog()
        record = log.emit("cache.miss", room="timik", target=3)
        assert record["schema"] == EVENT_SCHEMA_VERSION
        assert record["seq"] == 0
        assert record["type"] == "cache.miss"
        assert record["target"] == 3
        assert record["t"] > 0
        assert log.records == [record]

    def test_seq_monotonic_and_counts(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [r["seq"] for r in log.records] == [0, 1, 2]
        assert log.counts == {"a": 2, "b": 1}
        summary = log.summary()
        assert summary == {"path": None, "events": 3,
                           "by_type": {"a": 2, "b": 1}}

    def test_disabled_log_drops_events(self):
        log = EventLog(enabled=False)
        assert log.emit("x") is None
        assert log.records == [] and log.counts == {}
        log.enable()
        assert log.emit("x")["seq"] == 0

    def test_file_backed_log_round_trips(self, tmp_path):
        path = tmp_path / "nested" / "events.jsonl"   # exercises makedirs
        with EventLog(path) as log:
            log.emit("guard.early_stop", epoch=5)
            log.emit("checkpoint.save", epoch=5, best=True)
        records = read_events(path)
        assert [r["type"] for r in records] == ["guard.early_stop",
                                                "checkpoint.save"]
        assert records[1]["best"] is True
        # file-backed logs stream to disk instead of accumulating memory
        assert log.records == []
        assert log.summary()["events"] == 2

    def test_read_events_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"schema": EVENT_SCHEMA_VERSION + 1,
                                    "seq": 0, "t": 0.0, "type": "x"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            read_events(path)

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"schema": 1, "seq": 0, "t": 0.0, "type": "a"}\n'
                        "\n")
        assert len(read_events(path)) == 1


class TestGuardSink:
    def test_nonfinite_rollback_is_emitted(self):
        sink = EventLog()
        guard = DivergenceGuard(sink=sink)
        guard.on_nonfinite(NonFiniteSignal("loss", float("nan"), epoch=2),
                           lr=0.1)
        assert len(sink.records) == 1
        event = sink.records[0]
        assert event["type"] == "guard.nonfinite_loss"
        assert event["epoch"] == 2
        assert event["retry"] == 1
        assert event["lr_after"] == pytest.approx(0.05)
        # the in-object event list still works without the 'guard.' prefix
        assert guard.events[0]["type"] == "nonfinite_loss"

    def test_guard_without_sink_still_records(self):
        guard = DivergenceGuard()
        guard.on_nonfinite(NonFiniteSignal("grad_norm", float("inf"), 0),
                           lr=0.1)
        assert guard.events[0]["type"] == "nonfinite_grad_norm"


class TestTrainerIntegration:
    @pytest.fixture(scope="class")
    def trained(self, problems, tmp_path_factory):
        from repro.obs import PERF

        directory = tmp_path_factory.mktemp("run")
        model = POSHGNN(seed=0)
        trainer = POSHGNNTrainer(model, epochs=2,
                                 checkpoint_dir=str(directory),
                                 save_every=1)
        PERF.reset().enable()
        try:
            result = trainer.train(problems)
        finally:
            PERF.disable().reset()
        return directory, result

    def test_events_jsonl_written(self, trained):
        directory, result = trained
        events_path = os.path.join(str(directory), "events.jsonl")
        assert result["events_path"] == events_path
        records = read_events(events_path)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "train.start"
        assert kinds[-1] == "train.complete"
        assert kinds.count("checkpoint.save") == 2
        saves = [r for r in records if r["type"] == "checkpoint.save"]
        for save in saves:
            assert os.path.exists(save["path"])

    def test_manifest_is_schema_v2_with_observability_fields(self, trained):
        directory, _ = trained
        manifest = RunManifest.load(os.path.join(str(directory),
                                                 "manifest.json"))
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION == 2
        assert manifest.events_path.endswith("events.jsonl")
        assert manifest.events_summary["events"] >= 4
        assert manifest.events_summary["by_type"]["checkpoint.save"] == 2
        assert "train.epoch_loss" in manifest.metrics
        assert manifest.metrics["train.epoch_loss"]["count"] == 2


class TestEventLogAdopt:
    """Folding a worker log's records into a parent log (fleet merge)."""

    def worker_records(self):
        worker = EventLog()
        worker.emit("session.open", session_id="a", room="timik")
        worker.emit("session.close", session_id="a", steps=3)
        return worker.records

    def test_adopt_restamps_seq_and_schema(self):
        parent = EventLog()
        parent.emit("fleet.open", session_id="a")
        adopted = parent.adopt(self.worker_records(), shard=1)
        assert [r["seq"] for r in parent.records] == [0, 1, 2]
        assert all(r["schema"] == EVENT_SCHEMA_VERSION for r in adopted)
        assert [r["type"] for r in adopted] \
            == ["session.open", "session.close"]

    def test_adopt_preserves_payload_and_wallclock(self):
        records = self.worker_records()
        parent = EventLog()
        adopted = parent.adopt(records, shard=2)
        for original, merged in zip(records, adopted):
            assert merged["t"] == original["t"]
            assert merged["shard"] == 2
            for key, value in original.items():
                if key not in ("schema", "seq"):
                    assert merged[key] == value

    def test_adopt_updates_counts_and_summary(self):
        parent = EventLog()
        parent.adopt(self.worker_records(), shard=0)
        parent.adopt(self.worker_records(), shard=1)
        assert parent.counts == {"session.open": 2, "session.close": 2}
        assert parent.summary()["events"] == 4

    def test_disabled_log_adopts_nothing(self):
        parent = EventLog(enabled=False)
        assert parent.adopt(self.worker_records(), shard=0) == []
        assert parent.records == [] and parent.counts == {}

    def test_adopt_writes_through_to_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as parent:
            parent.adopt(self.worker_records(), shard=3)
        records = read_events(str(path))
        assert [r["type"] for r in records] \
            == ["session.open", "session.close"]
        assert all(r["shard"] == 3 for r in records)

    def test_readopting_shard_tagged_records_retags(self):
        """Re-adoption (fleet log folded into a higher-level log) must
        restamp seq and let the new extra win over the old shard tag."""
        fleet = EventLog()
        fleet.adopt(self.worker_records(), shard=1)
        parent = EventLog()
        readopted = parent.adopt(fleet.records, shard=7)
        assert [r["seq"] for r in readopted] == [0, 1]
        assert all(r["shard"] == 7 for r in readopted)
        assert parent.counts == {"session.open": 1, "session.close": 1}

    def test_readopting_without_extra_preserves_existing_tags(self):
        fleet = EventLog()
        fleet.adopt(self.worker_records(), shard=4)
        parent = EventLog()
        readopted = parent.adopt(fleet.records)
        assert all(r["shard"] == 4 for r in readopted)
        assert [r["seq"] for r in readopted] == [0, 1]


class TestEventLogListeners:
    def test_emit_notifies_listeners(self):
        log = EventLog()
        seen = []
        log.listeners.append(seen.append)
        record = log.emit("serving.session_shed", session_id="x")
        assert seen == [record]

    def test_adopt_notifies_listeners_per_record(self):
        log = EventLog()
        seen = []
        log.listeners.append(seen.append)
        worker = EventLog()
        worker.emit("session.open")
        worker.emit("session.close")
        log.adopt(worker.records, shard=1)
        assert [r["type"] for r in seen] == ["session.open",
                                             "session.close"]
        assert all(r["shard"] == 1 for r in seen)

    def test_disabled_log_does_not_notify(self):
        log = EventLog(enabled=False)
        seen = []
        log.listeners.append(seen.append)
        log.emit("x")
        log.adopt([{"schema": 1, "seq": 0, "t": 0.0, "type": "y"}])
        assert seen == []
