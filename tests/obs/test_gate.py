"""Bench-regression gate: comparison logic and the CLI exit codes."""

import json

import pytest

from repro.obs import (
    GateReport,
    TimerComparison,
    compare_benchmarks,
    load_bench_timings,
)
from repro.obs.__main__ import main

BASELINE = {"timings_s": {"batched": 0.10, "reference": 0.50,
                          "tiny": 1e-5}}


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestComparisonLogic:
    def test_identical_runs_pass(self):
        report = compare_benchmarks(BASELINE, BASELINE)
        assert report.ok
        assert not report.regressions
        assert "PASS" in report.render()

    def test_injected_slowdown_fails(self):
        current = {"timings_s": {"batched": 0.15, "reference": 0.50,
                                 "tiny": 1e-5}}
        report = compare_benchmarks(BASELINE, current, threshold=0.25)
        assert not report.ok
        assert [c.name for c in report.regressions] == ["batched"]
        rendered = report.render()
        assert "REGRESSED" in rendered and "FAIL" in rendered

    def test_threshold_is_a_strict_bound(self):
        current = {"timings_s": {"batched": 0.125, "reference": 0.50}}
        assert compare_benchmarks(BASELINE, current, threshold=0.25).ok
        assert not compare_benchmarks(BASELINE, current, threshold=0.24).ok

    def test_speedups_pass(self):
        current = {"timings_s": {"batched": 0.01, "reference": 0.02}}
        assert compare_benchmarks(BASELINE, current).ok

    def test_min_time_skips_noise_timers(self):
        current = {"timings_s": {"batched": 0.10, "reference": 0.50,
                                 "tiny": 1.0}}  # 1e5x "regression" on noise
        report = compare_benchmarks(BASELINE, current)
        assert report.ok
        assert report.skipped == ["tiny"]

    def test_selected_timers_compared_even_below_min_time(self):
        current = {"timings_s": {"batched": 0.10, "tiny": 1.0}}
        report = compare_benchmarks(BASELINE, current, timers=["tiny"])
        assert not report.ok

    def test_unknown_selected_timer_raises(self):
        with pytest.raises(ValueError, match="not present"):
            compare_benchmarks(BASELINE, BASELINE, timers=["nope"])

    def test_missing_and_added_timers_do_not_fail(self):
        current = {"timings_s": {"batched": 0.10, "brand_new": 9.0}}
        report = compare_benchmarks(BASELINE, current)
        assert report.ok
        assert report.missing == ["reference", "tiny"]
        assert report.added == ["brand_new"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks(BASELINE, BASELINE, threshold=-0.1)

    def test_zero_baseline_ratio(self):
        assert TimerComparison("x", 0.0, 0.0).ratio == 1.0
        assert TimerComparison("x", 0.0, 0.1).ratio == float("inf")

    def test_empty_report_passes(self):
        assert GateReport(threshold=0.25).ok


class TestLoadBenchTimings:
    def test_timings_s_section(self):
        assert load_bench_timings(BASELINE)["batched"] == 0.10

    def test_perf_report_timers_section(self):
        document = {"timers": {"eval.episode": {"count": 4,
                                                "total_s": 1.25,
                                                "mean_ms": 312.5}}}
        assert load_bench_timings(document) == {"eval.episode": 1.25}

    def test_bench_record_instrumentation_section(self):
        document = {"instrumentation": {
            "timers": {"eval.episode": {"total_s": 2.0}}}}
        assert load_bench_timings(document) == {"eval.episode": 2.0}

    def test_flat_mapping(self):
        assert load_bench_timings({"a": 1, "b": 2.5}) == {"a": 1.0,
                                                          "b": 2.5}

    def test_no_timings_rejected(self):
        with pytest.raises(ValueError, match="no timings"):
            load_bench_timings({"notes": "hello"})
        with pytest.raises(ValueError):
            load_bench_timings([1, 2, 3])

    def test_reads_from_path(self, tmp_path):
        path = _write(tmp_path, "bench.json", BASELINE)
        assert load_bench_timings(path)["reference"] == 0.50

    def test_non_finite_timings_are_dropped(self):
        """NaN/inf entries must not poison gate ratios."""
        document = {"timings_s": {"batched": 0.10,
                                  "broken": float("nan"),
                                  "hung": float("inf")}}
        assert load_bench_timings(document) == {"batched": 0.10}
        timers = {"timers": {"ok": {"total_s": 1.0},
                             "bad": {"total_s": float("nan")}}}
        assert load_bench_timings(timers) == {"ok": 1.0}
        # a section that is *all* non-finite reads as absent, not fatal
        assert load_bench_timings({"timings_s": {"x": float("nan")}}) == {}


class TestCli:
    def test_gate_identical_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "b.json", BASELINE)
        assert main(["gate", "--baseline", path, "--current", path]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_gate_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = _write(tmp_path, "b.json", BASELINE)
        current = _write(tmp_path, "c.json", {
            "timings_s": {"batched": 0.15, "reference": 0.50}})
        assert main(["gate", "--baseline", baseline,
                     "--current", current]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_gate_report_only_always_exits_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path, "b.json", BASELINE)
        current = _write(tmp_path, "c.json", {
            "timings_s": {"batched": 0.90, "reference": 0.50}})
        assert main(["gate", "--baseline", baseline, "--current", current,
                     "--report-only"]) == 0
        assert "FAIL" in capsys.readouterr().out

    def test_gate_timers_flag(self, tmp_path, capsys):
        baseline = _write(tmp_path, "b.json", BASELINE)
        current = _write(tmp_path, "c.json", {
            "timings_s": {"batched": 0.90, "reference": 0.50}})
        assert main(["gate", "--baseline", baseline, "--current", current,
                     "--timers", "reference"]) == 0
        capsys.readouterr()

    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.obs import Tracer, write_chrome_trace

        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tracer.spans)
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out

    def test_metrics_subcommand(self, tmp_path, capsys):
        document = {"timers": {"eval.episode": {"count": 2, "total_s": 0.5,
                                                "mean_ms": 250.0}},
                    "counters": {"eval.steps": 14},
                    "histograms": {"eval.recommend_s": {
                        "count": 3, "p50": 0.01, "p90": 0.02, "p99": 0.03}}}
        path = _write(tmp_path, "metrics.json", document)
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "eval.episode" in out and "eval.steps" in out
        assert "eval.recommend_s" in out

    def test_metrics_empty_document_exits_nonzero(self, tmp_path, capsys):
        path = _write(tmp_path, "m.json", {"irrelevant": {}})
        assert main(["metrics", path]) == 1
        capsys.readouterr()
