"""Histogram buckets/quantiles and timer/registry merge semantics."""

import math

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDARIES,
    DEFAULT_VALUE_BOUNDARIES,
    Histogram,
    Instrumentation,
    TimerStat,
)


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram(boundaries=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 3.0, 99.0):
            histogram.observe(value)
        # buckets: <=1, (1,2], (2,5], overflow
        assert histogram.bucket_counts == [1, 2, 1, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(0.5 + 1.5 + 1.7 + 3.0 + 99.0)
        assert histogram.min == 0.5 and histogram.max == 99.0
        assert histogram.mean == pytest.approx(histogram.total / 5)

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=())
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=(2.0, 1.0))

    def test_default_ladders_are_ascending(self):
        for ladder in (DEFAULT_LATENCY_BOUNDARIES, DEFAULT_VALUE_BOUNDARIES):
            assert all(a < b for a, b in zip(ladder, ladder[1:]))

    def test_quantile_single_observation_is_exact(self):
        histogram = Histogram(boundaries=(10.0,))
        histogram.observe(5.0)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == 5.0

    def test_quantile_interpolates_within_bucket(self):
        histogram = Histogram(boundaries=(25.0, 50.0, 75.0, 100.0))
        for value in range(1, 101):
            histogram.observe(float(value))
        # rank 50 lands in the (50, 75] bucket after 49 earlier values.
        assert histogram.quantile(0.50) == pytest.approx(51.0)
        p90, p99 = histogram.quantile(0.90), histogram.quantile(0.99)
        assert 80.0 <= p90 <= 100.0
        assert p90 <= p99 <= 100.0

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram(boundaries=(100.0,))
        histogram.observe(2.0)
        histogram.observe(3.0)
        assert histogram.quantile(0.99) <= 3.0
        assert histogram.quantile(0.01) >= 2.0

    def test_quantile_edge_cases(self):
        histogram = Histogram(boundaries=(1.0,))
        assert math.isnan(histogram.quantile(0.5))       # empty
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_as_dict_reports_p50_p90_p99(self):
        histogram = Histogram(boundaries=(1.0, 2.0))
        histogram.observe(0.5)
        summary = histogram.as_dict()
        assert summary["count"] == 1
        assert summary["min"] == 0.5 and summary["max"] == 0.5
        assert summary["p50"] == summary["p90"] == summary["p99"] == 0.5
        empty = Histogram(boundaries=(1.0,)).as_dict()
        assert empty["count"] == 0
        assert math.isnan(empty["p50"])

    def test_empty_histogram_stats_are_nan_not_zero(self):
        """Regression: empty ``mean`` used to read 0.0 while ``p50``
        read NaN — an SLO like ``mean(latency) < x`` would then treat
        "never observed" as "instantaneously fast"."""
        empty = Histogram(boundaries=(1.0,))
        assert math.isnan(empty.mean)
        summary = empty.as_dict()
        assert math.isnan(summary["min"]) and math.isnan(summary["max"])
        assert math.isnan(summary["p50"])
        assert summary["count"] == 0

    def test_merge_equals_single_histogram(self):
        a = Histogram(boundaries=(1.0, 2.0, 5.0))
        b = Histogram(boundaries=(1.0, 2.0, 5.0))
        combined = Histogram(boundaries=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 9.0):
            a.observe(value)
            combined.observe(value)
        for value in (0.1, 4.0):
            b.observe(value)
            combined.observe(value)
        a.merge(b)
        assert a.bucket_counts == combined.bucket_counts
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        assert a.min == combined.min and a.max == combined.max

    def test_merge_rejects_different_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0,)).merge(Histogram(boundaries=(2.0,)))

    def test_state_round_trip(self):
        histogram = Histogram(boundaries=(1.0, 2.0))
        histogram.observe(0.3)
        histogram.observe(1.8)
        restored = Histogram.from_state(histogram.state())
        assert restored.boundaries == histogram.boundaries
        assert restored.bucket_counts == histogram.bucket_counts
        assert restored.count == histogram.count
        assert restored.min == histogram.min
        assert restored.max == histogram.max


class TestTimerStatMerge:
    def test_merge_folds_count_total_min_max(self):
        a = TimerStat()
        b = TimerStat()
        for seconds in (0.2, 0.4):
            a.add(seconds)
        for seconds in (0.1, 0.9):
            b.add(seconds)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(1.6)
        assert a.min == 0.1 and a.max == 0.9

    def test_merge_with_empty_is_identity(self):
        a = TimerStat()
        a.add(0.5)
        a.merge(TimerStat())
        assert a.count == 1
        assert a.min == 0.5 and a.max == 0.5
        empty = TimerStat()
        empty.merge(a)
        assert empty.count == 1
        assert empty.min == 0.5 and empty.max == 0.5

    def test_state_round_trip(self):
        stat = TimerStat()
        stat.add(0.25)
        stat.add(0.75)
        restored = TimerStat.from_state(stat.state())
        assert restored == stat


class TestRegistryMerge:
    def _populated(self):
        perf = Instrumentation(enabled=True)
        with perf.scope("work"):
            pass
        perf.count("steps", 3)
        perf.observe("latency", 0.5, boundaries=(1.0, 2.0))
        return perf

    def test_export_state_round_trips_into_empty_registry(self):
        source = self._populated()
        target = Instrumentation(enabled=True)
        target.merge_snapshot(source.export_state())
        assert target.timers["work"].count == 1
        assert target.counters == {"steps": 3}
        assert target.histograms["latency"].count == 1
        assert target.histograms["latency"].min == 0.5

    def test_merge_adds_into_existing_entries(self):
        source = self._populated()
        target = self._populated()
        target.merge_snapshot(source.export_state())
        assert target.timers["work"].count == 2
        assert target.counters == {"steps": 6}
        assert target.histograms["latency"].count == 2

    def test_merge_applies_even_while_disabled(self):
        """The parent registry may be disabled when workers report in."""
        source = self._populated()
        target = Instrumentation(enabled=False)
        target.merge_snapshot(source.export_state())
        assert target.timers["work"].count == 1
        assert target.counters == {"steps": 3}

    def test_observe_respects_enabled_flag(self):
        perf = Instrumentation(enabled=False)
        perf.observe("latency", 1.0)
        perf.count("steps")
        assert perf.histograms == {} and perf.counters == {}

    def test_report_includes_histogram_section(self):
        report = self._populated().report()
        assert report["histograms"]["latency"]["count"] == 1
        assert "p99" in report["histograms"]["latency"]
        assert Instrumentation(enabled=True).report().get("histograms") \
            is None
