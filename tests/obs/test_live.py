"""Live telemetry rings: series aggregates, sampler deltas, save/load."""

import json
import math

import pytest

from repro.obs import (
    TELEMETRY_SCHEMA_VERSION,
    Histogram,
    HistogramSeries,
    ShardTelemetry,
    TelemetrySampler,
    TimeSeries,
    load_telemetry,
    render_top,
)


def _latency_state(values, boundaries=(0.001, 0.01, 0.1)):
    """An export_state-shaped cumulative histogram over ``values``."""
    histogram = Histogram(boundaries=boundaries)
    for value in values:
        histogram.observe(value)
    return histogram.state()


class FakeSource:
    """A telemetry source scripted one sample at a time."""

    def __init__(self):
        self.entries = []

    def telemetry_sample(self):
        return self.entries

    def set(self, *, queue_depth=0, open_sessions=0, counters=None,
            histograms=None, shard=0):
        self.entries = [{
            "shard": shard,
            "queue_depth": queue_depth,
            "open_sessions": open_sessions,
            "perf": {"timers": {}, "counters": counters or {},
                     "histograms": histograms or {}},
        }]
        return self


class TestTimeSeries:
    def test_append_window_and_last(self):
        series = TimeSeries(capacity=8)
        for t in range(5):
            series.append(float(t), float(t) * 10.0)
        assert len(series) == 5
        assert series.last.value == 40.0
        assert series.values(start=2.0) == [20.0, 30.0, 40.0]
        assert series.values() == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_ring_evicts_oldest(self):
        series = TimeSeries(capacity=3)
        for t in range(10):
            series.append(float(t), float(t))
        assert len(series) == 3
        assert series.values() == [7.0, 8.0, 9.0]

    def test_aggregates(self):
        series = TimeSeries()
        for t, value in enumerate((4.0, 1.0, 3.0, 2.0)):
            series.append(float(t), value)
        assert series.aggregate("mean") == pytest.approx(2.5)
        assert series.aggregate("max") == 4.0
        assert series.aggregate("min") == 1.0
        assert series.aggregate("last") == 2.0
        assert series.aggregate("sum") == 10.0
        assert series.aggregate("p50") == pytest.approx(2.5)

    def test_empty_window_is_nan_not_zero(self):
        series = TimeSeries()
        assert math.isnan(series.aggregate("mean"))
        series.append(1.0, 5.0)
        # window entirely in the future -> still no data
        assert math.isnan(series.aggregate("mean", start=2.0))

    def test_unknown_aggregate_rejected(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        with pytest.raises(ValueError, match="aggregate"):
            series.aggregate("median")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)

    def test_state_round_trip(self):
        series = TimeSeries(capacity=4)
        series.append(1.0, 2.0)
        series.append(2.0, 3.0)
        restored = TimeSeries.from_state(series.state())
        assert restored.capacity == 4
        assert restored.values() == [2.0, 3.0]


class TestHistogramSeries:
    def _delta(self, values):
        histogram = Histogram(boundaries=(1.0, 2.0, 5.0))
        for value in values:
            histogram.observe(value)
        return histogram

    def test_window_merge_matches_single_histogram(self):
        series = HistogramSeries()
        series.append(0.0, self._delta([0.5, 1.5]))
        series.append(1.0, self._delta([3.0, 9.0]))
        combined = self._delta([0.5, 1.5, 3.0, 9.0])
        merged = series.window_histogram()
        assert merged.bucket_counts == combined.bucket_counts
        assert merged.count == 4
        assert series.aggregate("count") == 4.0
        assert series.aggregate("sum") == pytest.approx(combined.total)

    def test_merge_does_not_mutate_interval_deltas(self):
        series = HistogramSeries()
        first = self._delta([0.5])
        series.append(0.0, first)
        series.append(1.0, self._delta([3.0]))
        series.window_histogram()
        assert first.count == 1          # the ring's delta is untouched

    def test_windowed_quantile_over_recent_intervals_only(self):
        series = HistogramSeries()
        series.append(0.0, self._delta([9.0, 9.0, 9.0]))
        series.append(5.0, self._delta([0.5, 0.5, 0.5]))
        # full window sees the old spike; trailing window does not
        assert series.quantile(0.99) > 1.0
        assert series.quantile(0.99, start=4.0) <= 1.0
        assert series.aggregate("p99", start=4.0) <= 1.0

    def test_empty_window_is_nan(self):
        series = HistogramSeries()
        assert math.isnan(series.quantile(0.5))
        assert math.isnan(series.aggregate("mean"))
        series.append(1.0, self._delta([0.5]))
        assert math.isnan(series.aggregate("p99", start=2.0))

    def test_ring_evicts_oldest(self):
        series = HistogramSeries(capacity=2)
        for t in range(4):
            series.append(float(t), self._delta([float(t)]))
        assert len(series) == 2
        assert series.last[0] == 3.0

    def test_state_round_trip(self):
        series = HistogramSeries(capacity=4)
        series.append(1.0, self._delta([0.5, 4.0]))
        restored = HistogramSeries.from_state(series.state())
        assert restored.capacity == 4
        assert restored.aggregate("count") == 2.0
        assert restored.window_histogram().bucket_counts \
            == series.window_histogram().bucket_counts


class TestShardTelemetry:
    def test_aggregate_dispatch_and_unknown_metric(self):
        telemetry = ShardTelemetry(shard=0)
        telemetry.gauge("serving.queue_depth").append(1.0, 7.0)
        histogram = Histogram(boundaries=(1.0,))
        histogram.observe(0.5)
        telemetry.histogram("serving.step_latency_s").append(2.0, histogram)
        assert telemetry.aggregate("serving.queue_depth", "last") == 7.0
        assert telemetry.aggregate("serving.step_latency_s", "p50") == 0.5
        assert math.isnan(telemetry.aggregate("no.such.metric", "mean"))

    def test_latest_timestamp_spans_all_series(self):
        telemetry = ShardTelemetry(shard=0)
        assert math.isnan(telemetry.latest_timestamp())
        telemetry.gauge("a").append(1.0, 0.0)
        assert telemetry.latest_timestamp() == 1.0
        histogram = Histogram(boundaries=(1.0,))
        histogram.observe(0.5)
        telemetry.histogram("b").append(3.0, histogram)
        assert telemetry.latest_timestamp() == 3.0


class TestTelemetrySampler:
    def test_direct_gauges_always_sampled(self):
        source = FakeSource().set(queue_depth=5, open_sessions=2)
        sampler = TelemetrySampler(source)
        sampler.sample(now=1.0)
        telemetry = sampler.shards[0]
        assert telemetry.aggregate("serving.queue_depth", "last") == 5.0
        assert telemetry.aggregate("serving.open_sessions", "last") == 2.0
        assert sampler.samples == 1

    def test_counter_deltas_become_interval_rates(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(counters={"serving.steps": 10})
        sampler.sample(now=0.0)
        source.set(counters={"serving.steps": 16, "serving.steps_shed": 2})
        sampler.sample(now=2.0)
        telemetry = sampler.shards[0]
        # interval consumed 6 steps + 2 shed
        assert telemetry.aggregate("serving.shed_rate", "last") \
            == pytest.approx(2 / 8)
        assert telemetry.aggregate("serving.throughput_steps_per_s",
                                   "last") == pytest.approx(6 / 2.0)

    def test_idle_interval_appends_no_rate_point(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(counters={"serving.steps": 10})
        sampler.sample(now=0.0)
        sampler.sample(now=1.0)          # counters unchanged: idle
        telemetry = sampler.shards[0]
        # one point from the first sample, none from the idle interval
        assert len(telemetry.gauge("serving.shed_rate")) == 1
        assert math.isnan(telemetry.aggregate("serving.shed_rate", "mean",
                                              start=0.5))

    def test_registry_reset_treated_as_fresh_baseline(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(counters={"serving.steps": 100})
        sampler.sample(now=0.0)
        # worker registry reset (the fleet's "obs" fold does this), then
        # 4 more steps: the counter went backwards
        source.set(counters={"serving.steps": 4})
        sampler.sample(now=1.0)
        telemetry = sampler.shards[0]
        assert telemetry.aggregate("serving.throughput_steps_per_s",
                                   "last") == pytest.approx(4.0)

    def test_histogram_delta_is_interval_only(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(counters={"serving.steps": 1},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005])})
        sampler.sample(now=0.0)
        source.set(counters={"serving.steps": 3},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005, 0.05, 0.05])})
        sampler.sample(now=1.0)
        series = sampler.shards[0].histogram("serving.step_latency_s")
        assert len(series) == 2
        t, delta = series.last
        assert t == 1.0
        assert delta.count == 2          # only the interval's observations

    def test_histogram_reset_treated_as_fresh_baseline(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(counters={"serving.steps": 3},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005, 0.05, 0.05])})
        sampler.sample(now=0.0)
        # reset between samples: fewer counts than before
        source.set(counters={"serving.steps": 4},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005])})
        sampler.sample(now=1.0)
        series = sampler.shards[0].histogram("serving.step_latency_s")
        assert series.last[1].count == 1

    def test_empty_interval_histogram_not_appended(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(counters={"serving.steps": 1},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005])})
        sampler.sample(now=0.0)
        sampler.sample(now=1.0)          # unchanged: no new observations
        series = sampler.shards[0].histogram("serving.step_latency_s")
        assert len(series) == 1

    def test_save_load_round_trip(self, tmp_path):
        source = FakeSource().set(queue_depth=3, open_sessions=1,
                                  counters={"serving.steps": 5})
        sampler = TelemetrySampler(source)
        sampler.sample(now=0.0)
        path = tmp_path / "telemetry.json"
        sampler.save(path)
        document = json.loads(path.read_text())
        assert document["schema"] == TELEMETRY_SCHEMA_VERSION
        assert document["kind"] == "repro.telemetry"
        shards = load_telemetry(path)
        assert shards[0].aggregate("serving.queue_depth", "last") == 3.0

    def test_load_rejects_newer_schema(self):
        with pytest.raises(ValueError, match="schema"):
            load_telemetry({"schema": TELEMETRY_SCHEMA_VERSION + 1,
                            "shards": {}})

    def test_background_thread_samples_and_saves(self, tmp_path):
        source = FakeSource().set(queue_depth=1, open_sessions=1)
        path = tmp_path / "telemetry.json"
        with TelemetrySampler(source) as sampler:
            sampler.start(interval_s=0.01, path=path)
            deadline = 200
            while sampler.samples < 2 and deadline:
                deadline -= 1
                import time
                time.sleep(0.01)
        assert sampler.samples >= 2
        assert sampler.last_error is None
        assert load_telemetry(path)

    def test_background_thread_records_pull_errors(self):
        class Exploding:
            def telemetry_sample(self):
                raise RuntimeError("shard died")

        sampler = TelemetrySampler(Exploding())
        sampler.start(interval_s=0.01)
        sampler._thread.join(timeout=5.0)
        sampler.stop()
        assert isinstance(sampler.last_error, RuntimeError)


class TestRenderTop:
    def test_rows_values_and_no_data_dashes(self):
        source = FakeSource()
        sampler = TelemetrySampler(source)
        source.set(queue_depth=4, open_sessions=2,
                   counters={"serving.steps": 8},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005] * 8)})
        sampler.sample(now=0.0)
        source.set(queue_depth=0, open_sessions=2,
                   counters={"serving.steps": 16},
                   histograms={"serving.step_latency_s":
                               _latency_state([0.005] * 16)})
        sampler.sample(now=1.0)
        out = render_top(sampler.shards, window_s=5.0)
        lines = out.splitlines()
        assert "shard" in lines[0] and "p99 ms" in lines[0]
        row = lines[1].split()
        assert row[0] == "0"
        assert row[1] == "2"             # open sessions
        assert "-" in row                # batch-size series never sampled

    def test_empty_fleet(self):
        assert render_top({}) == "(no telemetry)"


class TestCliTop:
    def _series(self, tmp_path):
        source = FakeSource().set(queue_depth=2, open_sessions=3,
                                  counters={"serving.steps": 6})
        sampler = TelemetrySampler(source)
        sampler.sample(now=0.0)
        sampler.sample(now=1.0)
        path = tmp_path / "telemetry.json"
        sampler.save(path)
        return str(path)

    def test_top_renders_table(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["top", self._series(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shard" in out and "queue" in out

    def test_top_missing_file_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["top", str(tmp_path / "missing.json")]) == 1
        assert "no telemetry" in capsys.readouterr().err
