"""Fork-parallel evaluation must not lose instrumentation.

The acceptance bar for the fork fix: a parallel ``evaluate_targets``
run produces the *same merged timer/counter counts* as a serial run of
the identical workload, and its trace contains the child processes'
per-episode spans (which previously died with the fork).
"""

import multiprocessing
import os

import pytest

from repro.core.evaluation import evaluate_targets
from repro.datasets import RoomConfig, generate_room
from repro.models import NearestRecommender
from repro.obs import PERF, TRACER

TARGETS = [0, 2, 5, 9, 11]

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


def _fresh_room():
    return generate_room("smm", RoomConfig(num_users=16, num_steps=6),
                         seed=4)


def _instrumented_run(workers=None):
    """Timer counts + counters of one cold evaluate_targets run."""
    room = _fresh_room()
    PERF.reset().enable()
    try:
        evaluate_targets(room, NearestRecommender(), TARGETS,
                         engine="batched", workers=workers)
        timer_counts = {name: stat.count
                        for name, stat in PERF.timers.items()}
        counters = dict(PERF.counters)
        histogram_counts = {name: histogram.count
                            for name, histogram in PERF.histograms.items()}
    finally:
        PERF.disable().reset()
    return timer_counts, counters, histogram_counts


@fork_available
def test_parallel_merged_counts_equal_serial():
    serial_timers, serial_counters, serial_histograms = _instrumented_run()
    timers, counters, histograms = _instrumented_run(workers=2)
    # the chunk-merge and IPC-measurement instrumentation is
    # parallel-only by design (a serial run crosses no process pipe)
    assert counters.pop("eval.parallel_chunks") == 2
    assert counters.pop("eval.ipc_bytes") > 0
    assert histograms.pop("eval.chunk_ipc_bytes") == 2
    assert timers == serial_timers
    assert counters == serial_counters
    assert histograms == serial_histograms
    # sanity: the workload actually ran episodes in the workers
    assert timers["eval.episode"] == len(TARGETS)
    assert serial_counters["eval.episodes"] == len(TARGETS)


@fork_available
def test_parallel_spans_cross_the_fork():
    room = _fresh_room()
    TRACER.reset().enable()
    try:
        evaluate_targets(room, NearestRecommender(), TARGETS,
                         engine="batched", workers=2)
        spans = list(TRACER.spans)
    finally:
        TRACER.disable().reset()
    pids = {span.pid for span in spans}
    assert os.getpid() in pids          # parent recorded eval.targets
    assert len(pids) >= 2               # child spans were adopted
    episode_spans = [s for s in spans if s.name == "eval.episode"]
    assert len(episode_spans) == len(TARGETS)
    assert all(span.pid != os.getpid() for span in episode_spans)
    # episode phases survived with their nesting depths intact
    child_names = {s.name for s in spans if s.pid != os.getpid()}
    assert {"eval.episode_frames", "eval.recommend",
            "eval.visibility", "eval.utility"} <= child_names
    targets = sorted(span.attrs["target"] for span in episode_spans)
    assert targets == sorted(TARGETS)


@fork_available
def test_parallel_timer_totals_are_positive_and_exact():
    """Merged totals cover the children's work, not just the parent's."""
    room = _fresh_room()
    PERF.reset().enable()
    try:
        evaluate_targets(room, NearestRecommender(), TARGETS,
                         engine="batched", workers=2)
        episode = PERF.timers["eval.episode"]
        assert episode.count == len(TARGETS)
        assert episode.total > 0.0
        assert 0.0 < episode.min <= episode.max
        # parent-side umbrella scope spans the whole run
        assert PERF.timers["eval.targets"].count == 1
        assert PERF.timers["eval.targets"].total >= episode.max
    finally:
        PERF.disable().reset()


# ----------------------------------------------------------------------
# Prefixed merging (the serving fleet's shard-tagged fold)
# ----------------------------------------------------------------------
def _worker_state(pump_seconds, steps):
    """An export_state payload shaped like one shard's registry."""
    from repro.obs.instrumentation import Instrumentation

    registry = Instrumentation().enable()
    with registry.scope("serving.pump"):
        pass
    payload = registry.export_state()
    # Make the timings deterministic for exact-fold assertions.
    timer = payload["timers"]["serving.pump"]
    timer["total"] = timer["min"] = timer["max"] = pump_seconds
    payload["counters"] = {"serving.steps_shed": steps}
    payload["histograms"] = {}
    return payload


def test_merge_snapshot_prefix_namespaces_every_metric():
    from repro.obs.instrumentation import Instrumentation

    registry = Instrumentation()
    registry.merge_snapshot(_worker_state(0.25, 3), prefix="shard0/")
    registry.merge_snapshot(_worker_state(0.75, 5), prefix="shard1/")
    assert set(registry.timers) == {"shard0/serving.pump",
                                    "shard1/serving.pump"}
    assert registry.timers["shard0/serving.pump"].total == 0.25
    assert registry.counters == {"shard0/serving.steps_shed": 3,
                                 "shard1/serving.steps_shed": 5}


def test_prefixed_and_unprefixed_folds_coexist_exactly():
    """The fleet merges each shard twice: aggregate + tagged.  The
    unprefixed entries must equal the sum of the tagged ones."""
    from repro.obs.instrumentation import Instrumentation

    registry = Instrumentation()
    states = [_worker_state(0.25, 3), _worker_state(0.75, 5)]
    for index, state in enumerate(states):
        registry.merge_snapshot(state)
        registry.merge_snapshot(state, prefix=f"shard{index}/")
    aggregate = registry.timers["serving.pump"]
    assert aggregate.count == sum(
        registry.timers[f"shard{i}/serving.pump"].count
        for i in range(2))
    assert aggregate.total == 1.0
    assert aggregate.min == 0.25 and aggregate.max == 0.75
    assert registry.counters["serving.steps_shed"] == 8
    assert registry.counters["shard1/serving.steps_shed"] == 5


def test_empty_prefix_is_the_exact_legacy_merge():
    from repro.obs.instrumentation import Instrumentation

    registry = Instrumentation()
    registry.merge_snapshot(_worker_state(0.5, 2))
    registry.merge_snapshot(_worker_state(0.5, 2), prefix="")
    assert registry.timers["serving.pump"].count == 2
    assert registry.counters == {"serving.steps_shed": 4}


def test_colliding_prefixes_fold_not_overwrite():
    """Two folds under the *same* prefix must add exactly, the same as
    an unprefixed double-merge — a restarted shard reusing an index
    must not clobber its predecessor's numbers."""
    from repro.obs.instrumentation import Instrumentation

    registry = Instrumentation()
    registry.merge_snapshot(_worker_state(0.25, 3), prefix="shard0/")
    registry.merge_snapshot(_worker_state(0.75, 5), prefix="shard0/")
    timer = registry.timers["shard0/serving.pump"]
    assert timer.count == 2
    assert timer.total == 1.0
    assert timer.min == 0.25 and timer.max == 0.75
    assert registry.counters == {"shard0/serving.steps_shed": 8}


def test_reprefixing_already_tagged_state_nests_namespaces():
    """Prefixing is purely textual: folding a registry that already
    holds ``shard1/``-tagged entries under another prefix nests the
    namespaces instead of silently colliding with the flat names."""
    from repro.obs.instrumentation import Instrumentation

    inner = Instrumentation()
    inner.merge_snapshot(_worker_state(0.5, 2), prefix="shard1/")
    outer = Instrumentation()
    outer.merge_snapshot(inner.export_state(), prefix="shard1/")
    assert set(outer.timers) == {"shard1/shard1/serving.pump"}
    assert outer.counters == {"shard1/shard1/serving.steps_shed": 2}
    # ...and a colliding flat fold of the same inner state stays distinct
    outer.merge_snapshot(inner.export_state())
    assert set(outer.timers) == {"shard1/shard1/serving.pump",
                                 "shard1/serving.pump"}
    assert outer.counters["shard1/serving.steps_shed"] == 2
