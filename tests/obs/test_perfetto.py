"""Chrome/Perfetto trace export: JSON shape, round trip, tree report."""

import json

from repro.obs import (
    Tracer,
    load_chrome_trace,
    span_tree_report,
    to_chrome_trace,
    write_chrome_trace,
)


def _traced_spans():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", {"target": 1}):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    return tracer.spans


class TestChromeTraceShape:
    def test_document_layout(self):
        document = to_chrome_trace(_traced_spans())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"

    def test_complete_events_carry_required_fields(self):
        events = to_chrome_trace(_traced_spans())["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid", "args"}
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert "depth" in event["args"]

    def test_metadata_events_name_tracks(self):
        events = to_chrome_trace(_traced_spans(),
                                 process_labels=None)["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}

    def test_process_labels_applied(self):
        spans = _traced_spans()
        pid = spans[0].pid
        events = to_chrome_trace(spans,
                                 process_labels={pid: "bench"})["traceEvents"]
        process = next(e for e in events if e["ph"] == "M"
                       and e["name"] == "process_name")
        assert process["args"]["name"] == "bench"

    def test_attrs_become_args(self):
        events = to_chrome_trace(_traced_spans())["traceEvents"]
        outer = next(e for e in events if e.get("name") == "outer"
                     and e["ph"] == "X")
        assert outer["args"]["target"] == 1

    def test_document_is_json_serialisable(self):
        json.dumps(to_chrome_trace(_traced_spans()))


class TestRoundTrip:
    def test_write_then_load_preserves_spans(self, tmp_path):
        spans = _traced_spans()
        path = write_chrome_trace(tmp_path / "trace.json", spans)
        loaded = load_chrome_trace(path)
        assert len(loaded) == len(spans)
        for original, restored in zip(spans, loaded):
            assert restored.name == original.name
            assert restored.depth == original.depth
            assert restored.pid == original.pid
            assert restored.tid == original.tid
            assert restored.attrs == original.attrs
            assert restored.ts_us == original.ts_us

    def test_load_skips_metadata_events(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _traced_spans())
        with open(path) as handle:
            events = json.load(handle)["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        assert all(s.name in {"outer", "inner"}
                   for s in load_chrome_trace(path))

    def test_tracer_export_helper(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            pass
        path = tracer.export_chrome_trace(tmp_path / "t.json")
        assert load_chrome_trace(path)[0].name == "root"


class TestSpanTreeReport:
    def test_nesting_and_aggregation(self):
        report = span_tree_report(_traced_spans())
        lines = report.splitlines()
        outer_line = next(line for line in lines
                          if line.startswith("outer"))
        inner_line = next(line for line in lines
                          if line.lstrip().startswith("inner"))
        # children indent under their parent and aggregate call counts
        assert inner_line.startswith("  inner")
        assert lines.index(outer_line) < lines.index(inner_line)
        assert inner_line.split()[1] == "2"
        assert outer_line.split()[1] == "1"

    def test_empty(self):
        assert span_tree_report([]) == "(no spans)"
