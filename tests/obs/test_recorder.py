"""Flight recorder: bounded rings, attach/detach, incident bundles."""

import json

import pytest

from repro.obs import (
    INCIDENT_SCHEMA_VERSION,
    EventLog,
    FlightRecorder,
    Tracer,
    default_incident_root,
    load_incident,
)


def _recorder(tmp_path, **kwargs):
    return FlightRecorder(directory=tmp_path / "incidents",
                          clock=lambda: 123.0, **kwargs)


class TestRings:
    def test_span_and_event_rings_are_bounded(self, tmp_path):
        recorder = _recorder(tmp_path, capacity_spans=3, capacity_events=2)
        tracer = Tracer(enabled=False)
        recorder.attach(tracer=tracer)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        for index in range(4):
            recorder.record_event({"type": "e", "seq": index})
        assert [span.name for span in recorder.spans] == ["s2", "s3", "s4"]
        assert [event["seq"] for event in recorder.events] == [2, 3]
        recorder.detach()

    def test_event_listener_feeds_ring(self, tmp_path):
        recorder = _recorder(tmp_path)
        events = EventLog()
        recorder.attach(events=events)
        events.emit("serving.session_shed", session_id="a")
        assert list(recorder.events)[-1]["type"] == "serving.session_shed"
        recorder.detach()
        events.emit("after.detach")
        assert list(recorder.events)[-1]["type"] == "serving.session_shed"

    def test_adopted_events_feed_ring(self, tmp_path):
        recorder = _recorder(tmp_path)
        parent = EventLog()
        recorder.attach(events=parent)
        worker = EventLog()
        worker.emit("session.open", session_id="a")
        parent.adopt(worker.records, shard=2)
        assert list(recorder.events)[-1]["shard"] == 2
        recorder.detach()


class TestAttachDetach:
    def test_attach_enables_tracing_without_retention(self, tmp_path):
        recorder = _recorder(tmp_path)
        tracer = Tracer(enabled=False)
        recorder.attach(tracer=tracer, retain_spans=False)
        assert tracer.enabled and not tracer.retain_spans
        with tracer.span("work"):
            pass
        # the span reached the ring but not the tracer's own list
        assert [span.name for span in recorder.spans] == ["work"]
        assert tracer.spans == []
        recorder.detach()
        assert not tracer.enabled and tracer.retain_spans

    def test_detach_restores_prior_flags_exactly(self, tmp_path):
        recorder = _recorder(tmp_path)
        tracer = Tracer(enabled=True)
        events = EventLog()
        recorder.attach(tracer=tracer, events=events,
                        enable_tracing=False, retain_spans=True)
        recorder.detach()
        assert tracer.enabled and tracer.retain_spans
        assert recorder.record_span not in tracer.listeners
        assert recorder.record_event not in events.listeners

    def test_context_manager_detaches(self, tmp_path):
        tracer = Tracer(enabled=False)
        with _recorder(tmp_path).attach(tracer=tracer) as recorder:
            assert tracer.enabled
        assert not tracer.enabled
        assert recorder.record_span not in tracer.listeners


class TestDump:
    def _attached(self, tmp_path):
        recorder = _recorder(tmp_path)
        tracer = Tracer(enabled=False)
        events = EventLog()
        recorder.attach(tracer=tracer, events=events)
        with tracer.span("serving.pump", {"batch": 4}):
            with tracer.span("serving.step"):
                pass
        events.emit("serving.session_shed", session_id="x")
        return recorder, tracer, events

    def test_bundle_layout_and_manifest(self, tmp_path):
        recorder, _, _ = self._attached(tmp_path)
        bundle = recorder.dump("slo-shed-rate-shard0",
                               extra={"rule": "shed-rate"})
        assert bundle.name == "slo-shed-rate-shard0-000"
        assert (bundle / "trace.json").exists()
        assert (bundle / "events.jsonl").exists()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["schema"] == INCIDENT_SCHEMA_VERSION
        assert manifest["kind"] == "repro.incident"
        assert manifest["reason"] == "slo-shed-rate-shard0"
        assert manifest["t"] == 123.0
        assert manifest["spans"] == 2 and manifest["events"] == 1
        assert manifest["extra"] == {"rule": "shed-rate"}
        recorder.detach()

    def test_load_incident_round_trips_spans(self, tmp_path):
        recorder, _, _ = self._attached(tmp_path)
        bundle = recorder.dump("shard1-failure")
        incident = load_incident(bundle)
        names = sorted(span.name for span in incident["spans"])
        assert names == ["serving.pump", "serving.step"]
        assert incident["events"][0]["type"] == "serving.session_shed"
        assert incident["manifest"]["reason"] == "shard1-failure"
        recorder.detach()

    def test_consecutive_dumps_keep_history_and_sequence(self, tmp_path):
        recorder, _, events = self._attached(tmp_path)
        first = recorder.dump("breach")
        events.emit("serving.session_shed", session_id="y")
        second = recorder.dump("breach")
        assert first.name == "breach-000" and second.name == "breach-001"
        assert len(load_incident(first)["events"]) == 1
        assert len(load_incident(second)["events"]) == 2
        assert recorder.dumps == [first, second]
        recorder.detach()

    def test_reason_is_slugged(self, tmp_path):
        recorder = _recorder(tmp_path)
        bundle = recorder.dump("p99(serving.step_latency_s) < 25ms!")
        assert "(" not in bundle.name and " " not in bundle.name

    def test_unjsonable_event_payloads_survive(self, tmp_path):
        recorder = _recorder(tmp_path)
        recorder.record_event({"type": "x", "bad": object()})
        incident = load_incident(recorder.dump("weird"))
        assert "object" in incident["events"][0]["bad"]

    def test_load_rejects_newer_schema(self, tmp_path):
        recorder = _recorder(tmp_path)
        bundle = recorder.dump("x")
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["schema"] = INCIDENT_SCHEMA_VERSION + 1
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema"):
            load_incident(bundle)


class TestDefaultRoot:
    def test_honours_run_dir_convention(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "run"))
        assert default_incident_root() == tmp_path / "run" / "incidents"
        monkeypatch.delenv("REPRO_RUN_DIR")
        assert default_incident_root().parts[-2:] == ("runs", "incidents")
