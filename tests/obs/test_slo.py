"""SLO rules: parsing, breach/recover transitions, recorded replay."""

import json
import math

import pytest

from repro.obs import (
    EventLog,
    Histogram,
    ShardTelemetry,
    SloMonitor,
    SloRule,
    evaluate_recorded,
    load_rules,
)


def _shard(shard=0):
    return ShardTelemetry(shard=shard)


def _observe(telemetry, t, name="serving.shed_rate", value=0.0):
    telemetry.gauge(name).append(t, value)


class TestRuleParsing:
    def test_full_spec(self):
        rule = SloRule.parse("p99(serving.step_latency_s) < 25ms over 5s")
        assert rule.metric == "serving.step_latency_s"
        assert rule.aggregate == "p99"
        assert rule.op == "<"
        assert rule.threshold == pytest.approx(0.025)
        assert rule.window_s == 5.0
        assert rule.name == "p99(serving.step_latency_s)"

    def test_unit_scaling(self):
        assert SloRule.parse("mean(x) < 5%").threshold \
            == pytest.approx(0.05)
        assert SloRule.parse("mean(x) < 2s").threshold == 2.0
        assert SloRule.parse("mean(x) < 3").threshold == 3.0

    def test_window_defaults_to_five_seconds(self):
        assert SloRule.parse("max(x) < 10").window_s == 5.0
        assert SloRule.parse("max(x) < 10 over 60s").window_s == 60.0

    def test_all_comparison_operators(self):
        for op in ("<", "<=", ">", ">="):
            assert SloRule.parse(f"mean(x) {op} 1").op == op

    def test_explicit_name_wins(self):
        assert SloRule.parse("mean(x) < 1", name="steady").name == "steady"

    def test_unparseable_specs_rejected(self):
        for bad in ("mean(x)", "p999(x) < 1", "mean(x) ~ 1",
                    "mean(x) < 1 over 5m"):
            with pytest.raises(ValueError):
                SloRule.parse(bad)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError, match="comparison"):
            SloRule(metric="x", aggregate="mean", op="~", threshold=1.0)
        with pytest.raises(ValueError, match="aggregate"):
            SloRule(metric="x", aggregate="median", op="<", threshold=1.0)

    def test_from_spec_forms(self):
        rule = SloRule.parse("mean(x) < 1")
        assert SloRule.from_spec(rule) is rule
        assert SloRule.from_spec("mean(x) < 1") == rule
        named = SloRule.from_spec({"spec": "mean(x) < 1", "name": "n"})
        assert named.name == "n"
        explicit = SloRule.from_spec({"metric": "x", "aggregate": "max",
                                      "threshold": 2, "window_s": 9})
        assert explicit.op == "<" and explicit.window_s == 9.0
        with pytest.raises(TypeError):
            SloRule.from_spec(42)

    def test_check_nan_never_satisfies(self):
        rule = SloRule.parse("mean(x) < 1")
        assert rule.check(0.5)
        assert not rule.check(2.0)
        assert not rule.check(float("nan"))

    def test_describe_round_trips(self):
        rule = SloRule.parse("p99(serving.step_latency_s) < 25ms over 5s")
        assert SloRule.parse(rule.describe(), name=rule.name) == rule


class TestMonitorTransitions:
    def _monitor(self, spec="mean(serving.shed_rate) < 0.5 over 10s"):
        events = EventLog()
        return SloMonitor([spec], events=events), events

    def test_breach_emitted_once_per_transition(self):
        monitor, events = self._monitor()
        telemetry = _shard()
        _observe(telemetry, 1.0, value=0.9)
        statuses = monitor.evaluate({0: telemetry})
        assert statuses[0].state == "breach"
        assert monitor.breached == [("mean(serving.shed_rate)", 0)]
        # still breaching: no second event
        _observe(telemetry, 2.0, value=0.9)
        monitor.evaluate({0: telemetry})
        assert [r["type"] for r in events.records] == ["slo.breach"]
        breach = events.records[0]
        assert breach["shard"] == 0
        assert breach["value"] == pytest.approx(0.9)

    def test_recover_emitted_on_exit(self):
        monitor, events = self._monitor("last(serving.shed_rate) < 0.5")
        telemetry = _shard()
        _observe(telemetry, 1.0, value=0.9)
        monitor.evaluate({0: telemetry})
        _observe(telemetry, 10.0, value=0.0)
        statuses = monitor.evaluate({0: telemetry})
        assert statuses[0].state == "ok"
        assert monitor.breached == []
        assert [r["type"] for r in events.records] \
            == ["slo.breach", "slo.recover"]

    def test_no_data_leaves_state_untouched(self):
        monitor, events = self._monitor("last(serving.shed_rate) < 0.5")
        telemetry = _shard()
        _observe(telemetry, 1.0, value=0.9)
        monitor.evaluate({0: telemetry})
        # evaluate far in the future: empty window -> no_data, and the
        # pair stays breached (absent signal is not recovery evidence)
        statuses = monitor.evaluate({0: telemetry}, now=100.0)
        assert statuses[0].state == "no_data"
        assert math.isnan(statuses[0].value)
        assert monitor.breached == [("last(serving.shed_rate)", 0)]
        assert [r["type"] for r in events.records] == ["slo.breach"]
        assert "-" in statuses[0].describe()

    def test_per_shard_state_is_independent(self):
        monitor, events = self._monitor()
        hot, cold = _shard(0), _shard(1)
        _observe(hot, 1.0, value=0.9)
        _observe(cold, 1.0, value=0.0)
        monitor.evaluate({0: hot, 1: cold})
        assert monitor.breached == [("mean(serving.shed_rate)", 0)]
        assert [r["shard"] for r in events.records] == [0]

    def test_breach_triggers_recorder_dump(self, tmp_path):
        class StubRecorder:
            def __init__(self):
                self.reasons = []

            def dump(self, reason, *, directory=None, extra=None):
                self.reasons.append((reason, extra))

        recorder = StubRecorder()
        monitor = SloMonitor(["mean(serving.shed_rate) < 0.5"],
                             recorder=recorder)
        telemetry = _shard()
        _observe(telemetry, 1.0, value=0.9)
        monitor.evaluate({0: telemetry})
        monitor.evaluate({0: telemetry})      # no re-dump while breached
        assert len(recorder.reasons) == 1
        reason, extra = recorder.reasons[0]
        assert reason.startswith("slo-") and "shard0" in reason
        assert extra["value"] == pytest.approx(0.9)

    def test_accepts_a_live_sampler_directly(self):
        from repro.obs import TelemetrySampler

        class Source:
            def telemetry_sample(self):
                return [{"shard": 0, "queue_depth": 900,
                         "open_sessions": 1, "perf": {}}]

        sampler = TelemetrySampler(Source())
        sampler.sample(now=1.0)
        monitor = SloMonitor(["max(serving.queue_depth) < 512"])
        statuses = monitor.evaluate(sampler)
        assert statuses[0].state == "breach"

    def test_histogram_metric_quantile_rule(self):
        monitor, events = self._monitor(
            "p99(serving.step_latency_s) < 25ms over 10s")
        telemetry = _shard()
        slow = Histogram(boundaries=(0.001, 0.01, 0.1))
        for _ in range(10):
            slow.observe(0.09)
        telemetry.histogram("serving.step_latency_s").append(1.0, slow)
        statuses = monitor.evaluate({0: telemetry})
        assert statuses[0].state == "breach"
        assert statuses[0].value > 0.025


class TestRecordedReplay:
    def _shards(self):
        """shed_rate goes 0 -> 1 -> 0: one breach, one recovery."""
        telemetry = _shard()
        for t, value in ((0.0, 0.0), (10.0, 1.0), (20.0, 0.0)):
            _observe(telemetry, t, value=value)
        return {0: telemetry}

    def test_transitions_fire_in_timestamp_order(self):
        report = evaluate_recorded(
            ["last(serving.shed_rate) < 0.5 over 5s"], self._shards())
        assert report.timestamps == 3
        assert not report.ok
        assert len(report.breach_events) == 1
        assert report.breach_events[0]["at"] == 10.0
        assert [r["type"] for r in report.events] \
            == ["slo.breach", "slo.recover"]
        # the final statuses reflect the last timestamp (recovered)
        assert report.statuses[0].state == "ok"

    def test_clean_series_is_ok(self):
        telemetry = _shard()
        _observe(telemetry, 0.0, value=0.0)
        report = evaluate_recorded(["last(serving.shed_rate) < 0.5"],
                                   {0: telemetry})
        assert report.ok
        assert "0 breach transition(s)" in report.render()

    def test_render_lists_breaches(self):
        report = evaluate_recorded(
            ["last(serving.shed_rate) < 0.5 over 5s"], self._shards())
        rendered = report.render()
        assert "breach @t=10" in rendered
        assert "1 breach transition(s) across 3 timestamp(s)" in rendered


class TestLoadRules:
    def test_from_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "shed", "spec": "max(serving.shed_rate) < 0.01"},
            {"metric": "serving.queue_depth", "aggregate": "max",
             "threshold": 100},
        ]}))
        rules = load_rules(path)
        assert [rule.name for rule in rules] \
            == ["shed", "max(serving.queue_depth)"]

    def test_from_bare_list(self):
        rules = load_rules(["mean(x) < 1", "max(y) > 0"])
        assert len(rules) == 2

    def test_repo_rule_file_parses(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] \
            / "benchmarks" / "slo_rules.json"
        rules = load_rules(path)
        assert len(rules) >= 3
        assert any(rule.metric == "serving.shed_rate" for rule in rules)


class TestCliSlo:
    def _series(self, tmp_path, shed):
        from repro.obs import TelemetrySampler

        class Source:
            def __init__(self):
                self.counters = {}

            def telemetry_sample(self):
                return [{"shard": 0, "queue_depth": 0, "open_sessions": 1,
                         "perf": {"counters": dict(self.counters)}}]

        source = Source()
        sampler = TelemetrySampler(source)
        source.counters = {"serving.steps": 4}
        sampler.sample(now=0.0)
        source.counters = {"serving.steps": 8,
                           "serving.steps_shed": 4 if shed else 0}
        sampler.sample(now=1.0)
        path = tmp_path / "telemetry.json"
        sampler.save(path)
        return str(path)

    def _rules(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            {"rules": [{"name": "no-shed",
                        "spec": "max(serving.shed_rate) < 0.01 over 60s"}]}))
        return str(path)

    def test_clean_series_exits_zero(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["slo", self._series(tmp_path, shed=False),
                     "--rules", self._rules(tmp_path)]) == 0
        assert "0 breach transition(s)" in capsys.readouterr().out

    def test_breaching_series_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        series = self._series(tmp_path, shed=True)
        rules = self._rules(tmp_path)
        assert main(["slo", series, "--rules", rules]) == 1
        assert "breach" in capsys.readouterr().out
        assert main(["slo", series, "--rules", rules,
                     "--report-only"]) == 0
