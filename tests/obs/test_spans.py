"""Span tracer: nesting, thread/fork awareness, disabled overhead."""

import threading
import tracemalloc

from repro.obs import PERF, Instrumentation, Tracer
from repro.obs.trace import _NULL_SPAN


class TestNesting:
    def test_nested_spans_record_depth_and_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("middle2"):
                pass
        names = [span.name for span in tracer.spans]
        # Spans finish children-first.
        assert names == ["inner", "middle", "middle2", "outer"]
        depths = {span.name: span.depth for span in tracer.spans}
        assert depths == {"outer": 0, "middle": 1, "inner": 2,
                          "middle2": 1}

    def test_children_lie_within_parent_interval(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        spans = {span.name: span for span in tracer.spans}
        parent, child = spans["parent"], spans["child"]
        assert parent.ts_us <= child.ts_us
        assert child.ts_us + child.dur_us <= parent.ts_us + parent.dur_us \
            + 1e-6

    def test_exceptions_close_the_span(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("broken"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [span.name for span in tracer.spans] == ["broken"]
        # Depth counter unwound: the next root span is depth 0 again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0

    def test_attrs_attached(self):
        tracer = Tracer(enabled=True)
        with tracer.span("episode", {"target": 3}):
            pass
        assert tracer.spans[0].attrs == {"target": 3}


class TestThreadAwareness:
    def test_threads_record_distinct_tids_and_depths(self):
        tracer = Tracer(enabled=True)

        def worker():
            with tracer.span("thread-root"):
                with tracer.span("thread-child"):
                    pass

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        tids = {span.tid for span in tracer.spans}
        assert len(tids) == 2
        by_name = {span.name: span for span in tracer.spans}
        # The worker's root nests under nothing despite the main
        # thread's open span: depth is tracked per thread.
        assert by_name["thread-root"].depth == 0
        assert by_name["thread-child"].depth == 1
        assert by_name["main-root"].depth == 0


class TestDisabledOverhead:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is _NULL_SPAN
        with tracer.span("anything"):
            pass
        assert tracer.spans == []

    def test_disabled_hot_path_allocates_nothing(self):
        """The disabled fast path must not allocate (hot-loop safe)."""
        perf = Instrumentation(enabled=False, tracer=Tracer(enabled=False))
        perf.scope("warmup")           # warm any lazy state
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                with perf.scope("hot"):
                    pass
                perf.count("hot")
                perf.observe("hot", 1.0)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        import repro.obs.instrumentation as module
        grew = [stat for stat in after.compare_to(before, "filename")
                if stat.size_diff > 0
                and module.__file__ in str(stat.traceback)]
        assert not grew, grew

    def test_perf_scope_bridges_to_enabled_tracer(self):
        tracer = Tracer(enabled=True)
        perf = Instrumentation(enabled=False, tracer=tracer)
        with perf.scope("bridged", {"k": 1}):
            pass
        assert perf.timers == {}            # timer side still disabled
        assert [span.name for span in tracer.spans] == ["bridged"]
        assert tracer.spans[0].attrs == {"k": 1}

    def test_perf_scope_records_timer_and_span_together(self):
        tracer = Tracer(enabled=True)
        perf = Instrumentation(enabled=True, tracer=tracer)
        with perf.scope("both"):
            pass
        assert perf.timers["both"].count == 1
        assert [span.name for span in tracer.spans] == ["both"]


class TestForkPlumbing:
    def test_drain_and_adopt_round_trip(self):
        source = Tracer(enabled=True)
        with source.span("work", {"chunk": 0}):
            pass
        payload = source.drain()
        assert source.spans == []
        target = Tracer(enabled=True)
        target.adopt(payload)
        assert len(target.spans) == 1
        span = target.spans[0]
        assert span.name == "work"
        assert span.attrs == {"chunk": 0}

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_reset_clears_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.spans == [] and tracer.dropped == 0


class TestGlobalWiring:
    def test_perf_is_bound_to_the_global_tracer(self):
        from repro.obs import TRACER
        assert PERF.tracer is TRACER

    def test_runtime_shim_exports_the_same_registry(self):
        import repro.obs
        import repro.runtime
        assert repro.runtime.PERF is repro.obs.PERF
        assert repro.runtime.Instrumentation is repro.obs.Instrumentation
        assert repro.runtime.TimerStat is repro.obs.TimerStat
