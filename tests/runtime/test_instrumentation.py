"""Tests for the shared runtime instrumentation registry."""

import time

from repro.runtime import Instrumentation, TimerStat
from repro.runtime.instrumentation import _NULL_SCOPE


class TestTimerStat:
    def test_accumulates(self):
        stat = TimerStat()
        stat.add(0.25)
        stat.add(0.75)
        assert stat.count == 2
        assert stat.total == 1.0
        assert stat.mean == 0.5
        assert stat.min == 0.25
        assert stat.max == 0.75

    def test_empty_as_dict(self):
        report = TimerStat().as_dict()
        assert report["count"] == 0
        assert report["mean_ms"] == 0.0
        assert report["min_ms"] == 0.0


class TestInstrumentation:
    def test_disabled_scope_is_shared_noop(self):
        perf = Instrumentation(enabled=False)
        assert perf.scope("anything") is _NULL_SCOPE
        with perf.scope("anything"):
            pass
        assert perf.timers == {}

    def test_enabled_scope_records(self):
        perf = Instrumentation().enable()
        with perf.scope("work"):
            time.sleep(0.001)
        assert perf.timers["work"].count == 1
        assert perf.timers["work"].total > 0

    def test_counters_and_add_time(self):
        perf = Instrumentation(enabled=True)
        perf.count("events")
        perf.count("events", 4)
        perf.add_time("external", 0.5)
        assert perf.counters["events"] == 5
        assert perf.timers["external"].total == 0.5

    def test_disabled_counters_are_noops(self):
        perf = Instrumentation(enabled=False)
        perf.count("events")
        perf.add_time("external", 1.0)
        assert perf.counters == {}
        assert perf.timers == {}

    def test_reset_clears_but_keeps_enabled(self):
        perf = Instrumentation(enabled=True)
        perf.count("events")
        perf.reset()
        assert perf.counters == {}
        assert perf.enabled

    def test_report_and_summary(self):
        perf = Instrumentation(enabled=True)
        with perf.scope("alpha"):
            pass
        perf.count("hits", 3)
        report = perf.report()
        assert "alpha" in report["timers"]
        assert report["counters"] == {"hits": 3}
        text = perf.summary()
        assert "alpha" in text and "hits" in text

    def test_exceptions_propagate_and_still_record(self):
        perf = Instrumentation(enabled=True)
        try:
            with perf.scope("broken"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert perf.timers["broken"].count == 1
