"""Shared helpers for the serving test suite."""

import numpy as np
import pytest

from repro.datasets import RoomConfig, generate_room

DATASETS = ("timik", "smm", "hubs")


def make_room(dataset: str, num_users: int, num_steps: int, seed: int):
    """One small generated room (deterministic in its arguments)."""
    return generate_room(dataset,
                         RoomConfig(num_users=num_users,
                                    num_steps=num_steps), seed=seed)


@pytest.fixture(scope="session")
def small_rooms():
    """A handful of distinct small rooms shared across engine tests."""
    return [make_room(DATASETS[seed % len(DATASETS)], 8 + (seed % 3),
                      4, seed) for seed in range(6)]
