"""Property suite: roster churn is exact, not approximate.

The churn contract (docs/WORKLOADS.md) is that mutating a live room's
roster — a user leaving, joining, or handing off between VR and MR —
leaves the session *bit-identical* to a fresh session opened on the
post-churn roster with the projected carried state installed.  The
reference state here is always projected with plain Python/numpy loops
in the test itself, a deliberately independent re-implementation of
:meth:`~repro.serving.RoomSession.apply_churn` and the recommenders'
``reroster`` overrides, so a shared bug cannot cancel out.

Churn also composes with every other mid-stream cut: suspend/resume
and engine-to-engine migration may interleave with queued churn markers
without perturbing a single bit of the continuation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AfterProblem
from repro.models.baselines import NearestRecommender
from repro.models.poshgnn import POSHGNN
from repro.serving import RoomSession, SessionEngine

from .conftest import DATASETS, make_room


def _subset_problem(universe, roster, target_user, *, beta=0.5,
                    max_render=4, interfaces=None):
    roster = np.asarray(roster, dtype=np.int64)
    mr = None if interfaces is None else interfaces[roster]
    return AfterProblem(
        room=universe.subset(roster, interfaces_mr=mr),
        target=int(np.nonzero(roster == target_user)[0][0]),
        beta=beta, max_render=max_render)


def _project_bool(old: np.ndarray, keep) -> np.ndarray:
    """Reference projection: plain-loop gather, joiners blank."""
    new = np.zeros(len(keep), dtype=bool)
    for slot, source in enumerate(keep):
        if source >= 0:
            new[slot] = old[source]
    return new


def _assert_steps_identical(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert left.t == right.t
        np.testing.assert_array_equal(left.rendered, right.rendered)
        assert left.shed == right.shed
        assert left.degraded == right.degraded
        if left.utility is None:
            assert right.utility is None
        else:
            assert left.utility.preference == right.utility.preference
            assert left.utility.presence == right.utility.presence
            assert (left.occlusion_rate == right.occlusion_rate
                    or (np.isnan(left.occlusion_rate)
                        and np.isnan(right.occlusion_rate)))


@st.composite
def churn_cases(draw):
    """(universe, roster, target user, cut step, churn op)."""
    dataset = draw(st.sampled_from(DATASETS))
    universe_users = draw(st.integers(8, 12))
    num_steps = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 500))
    universe = make_room(dataset, universe_users, num_steps, seed)
    size = draw(st.integers(5, universe_users - 1))
    roster = sorted(draw(st.permutations(range(universe_users)))[:size])
    target_user = roster[draw(st.integers(0, size - 1))]
    cut = draw(st.integers(0, num_steps))
    kind = draw(st.sampled_from(("leave", "join", "handoff")))
    return universe, roster, target_user, cut, kind


def _apply_case_churn(session, universe, roster, target_user, kind,
                      draw_index):
    """Apply one churn op; returns (new roster, applied change)."""
    if kind == "leave":
        movable = [u for u in roster if u != target_user]
        victim = movable[draw_index % len(movable)]
        change = session.retire_users(
            [roster.index(victim)])
        return [u for u in roster if u != victim], change
    if kind == "join":
        free = sorted(set(range(universe.num_users)) - set(roster))
        joiner = free[draw_index % len(free)]
        new_roster = roster + [joiner]
        keep = np.append(np.arange(len(roster)), -1)
        problem = _subset_problem(universe, new_roster, target_user)
        change = session.admit_users(problem, keep)
        return new_roster, change
    flipped = roster[draw_index % len(roster)]
    change = session.handoff_users([roster.index(flipped)])
    return list(roster), change


@settings(max_examples=25, deadline=None)
@given(churn_cases(), st.integers(0, 10 ** 6))
def test_churned_session_equals_seeded_fresh_session(case, draw_index):
    """Post-churn steps match a fresh session with projected state.

    The fresh session is built through a *different* path: a new
    recommender on the post-churn problem, display state projected by
    the test's own loop and installed via ``RoomSession.seeded`` — if
    ``apply_churn`` mutated anything it should not (stale converter,
    cached DOGs, history widths), the continuations diverge.
    """
    universe, roster, target_user, cut, kind = case
    positions = universe.trajectory.positions
    problem = _subset_problem(universe, roster, target_user)
    session = RoomSession(problem, NearestRecommender(),
                          session_id="churned").begin()
    for t in range(cut):
        session.step(positions[t][np.asarray(roster)])

    pre_visible = session._visible_previous.copy()
    pre_rendered = session._rendered_previous.copy()
    new_roster, change = _apply_case_churn(
        session, universe, roster, target_user, kind, draw_index)

    reference = RoomSession.seeded(
        change.problem, NearestRecommender(), session_id="fresh",
        t_next=cut,
        visible_previous=_project_bool(pre_visible, change.keep),
        rendered_previous=_project_bool(pre_rendered, change.keep))

    gather = np.asarray(new_roster)
    for t in range(cut, universe.horizon + 1):
        session.step(positions[t][gather])
        reference.step(positions[t][gather])
    _assert_steps_identical(reference.steps, session.steps[cut:])
    np.testing.assert_array_equal(reference._visible_previous,
                                  session._visible_previous)


@settings(max_examples=15, deadline=None)
@given(churn_cases(), st.integers(0, 10 ** 6))
def test_poshgnn_reroster_matches_numpy_projection(case, draw_index):
    """POSHGNN's projected state equals an independent loop projection."""
    universe, roster, target_user, cut, kind = case
    positions = universe.trajectory.positions
    problem = _subset_problem(universe, roster, target_user)
    session = RoomSession(problem, POSHGNN(seed=11),
                          session_id="gnn").begin()
    for t in range(cut):
        session.step(positions[t][np.asarray(roster)])

    before = session.recommender.carried_state()
    new_roster, change = _apply_case_churn(
        session, universe, roster, target_user, kind, draw_index)
    after = session.recommender.carried_state()

    count = len(new_roster)
    expected_hidden = np.zeros((count, before["hidden"].shape[1]))
    expected_recommendation = np.zeros(count)
    expected_rendered = np.zeros(count, dtype=bool)
    for slot, source in enumerate(change.keep):
        if source >= 0:
            expected_hidden[slot] = before["hidden"][source]
            expected_recommendation[slot] = \
                before["recommendation"][source]
            expected_rendered[slot] = before["rendered"][source]
    np.testing.assert_array_equal(after["hidden"], expected_hidden)
    np.testing.assert_array_equal(after["recommendation"],
                                  expected_recommendation)
    np.testing.assert_array_equal(after["rendered"], expected_rendered)
    if before["previous_adjacency"] is None:
        assert after["previous_adjacency"] is None
    else:
        expected_adjacency = np.zeros((count, count))
        for i, si in enumerate(change.keep):
            for j, sj in enumerate(change.keep):
                if si >= 0 and sj >= 0:
                    expected_adjacency[i, j] = \
                        before["previous_adjacency"][si, sj]
        np.testing.assert_array_equal(after["previous_adjacency"],
                                      expected_adjacency)
    # The projected session must still advance cleanly.
    session.step(positions[min(cut, universe.horizon)]
                 [np.asarray(new_roster)])


@settings(max_examples=15, deadline=None)
@given(churn_cases(), st.integers(0, 10 ** 6))
def test_suspend_resume_interleaved_with_churn(case, draw_index):
    """churn -> suspend -> resume continues bit-identically."""
    universe, roster, target_user, cut, kind = case
    positions = universe.trajectory.positions
    problem = _subset_problem(universe, roster, target_user)

    def run(with_cut: bool) -> RoomSession:
        session = RoomSession(problem, POSHGNN(seed=5),
                              session_id="cutme").begin()
        for t in range(cut):
            session.step(positions[t][np.asarray(roster)])
        new_roster, _ = _apply_case_churn(
            session, universe, roster, target_user, kind, draw_index)
        if with_cut:
            session = RoomSession.resume(session.suspend())
        gather = np.asarray(new_roster)
        for t in range(cut, universe.horizon + 1):
            session.step(positions[t][gather])
        return session

    _assert_steps_identical(run(False).steps, run(True).steps)


@settings(max_examples=12, deadline=None)
@given(churn_cases(), st.integers(0, 10 ** 6), st.integers(0, 3))
def test_queued_churn_matches_serial_application(case, draw_index,
                                                 backlog):
    """A churn marker queued behind pending steps applies in order.

    The engine run leaves ``backlog`` pre-churn frames unpumped when
    the churn arrives (so the marker queues behind them); the serial
    reference steps the same frames and churns at the same submit
    boundary.  Both must produce identical step sequences — the
    regression this pins is the engine applying a churn eagerly while
    pre-churn frames are still in flight.
    """
    universe, roster, target_user, cut, kind = case
    positions = universe.trajectory.positions
    problem = _subset_problem(universe, roster, target_user)

    serial = RoomSession(problem, NearestRecommender(),
                         session_id="serial").begin()
    for t in range(cut):
        serial.step(positions[t][np.asarray(roster)])
    new_roster, change = _apply_case_churn(
        serial, universe, roster, target_user, kind, draw_index)
    gather = np.asarray(new_roster)
    for t in range(cut, universe.horizon + 1):
        serial.step(positions[t][gather])

    with SessionEngine(max_batch=4) as engine:
        engine.open_session(problem, NearestRecommender(),
                            session_id="queued")
        backlog = min(backlog, cut)
        for t in range(cut - backlog):
            engine.submit("queued", positions[t][np.asarray(roster)])
            engine.pump()
        for t in range(cut - backlog, cut):
            engine.submit("queued", positions[t][np.asarray(roster)])
        engine.churn_session("queued", change)
        assert engine.session("queued").churn_count == (0 if backlog
                                                        else 1)
        for t in range(cut, universe.horizon + 1):
            engine.submit("queued", positions[t][gather])
        engine.drain()
        streamed = engine.close_session("queued")
    _assert_steps_identical(serial.steps, streamed.steps)


@settings(max_examples=10, deadline=None)
@given(churn_cases(), st.integers(0, 10 ** 6))
def test_migration_cut_with_pending_churn_marker(case, draw_index):
    """Suspending mid-queue ships churn markers across engines intact.

    The session migrates from one engine to another while a pre-churn
    frame *and* the churn marker are still pending — the marker must
    travel with the queue and apply on the adopting engine exactly
    where it would have on the source.
    """
    universe, roster, target_user, cut, kind = case
    positions = universe.trajectory.positions
    problem = _subset_problem(universe, roster, target_user)

    serial = RoomSession(problem, NearestRecommender(),
                         session_id="serial").begin()
    for t in range(cut):
        serial.step(positions[t][np.asarray(roster)])
    new_roster, change = _apply_case_churn(
        serial, universe, roster, target_user, kind, draw_index)
    gather = np.asarray(new_roster)
    for t in range(cut, universe.horizon + 1):
        serial.step(positions[t][gather])

    source = SessionEngine(max_batch=4)
    target = SessionEngine(max_batch=4)
    with source, target:
        source.open_session(problem, NearestRecommender(),
                            session_id="mover")
        backlog = min(1, cut)
        for t in range(cut - backlog):
            source.submit("mover", positions[t][np.asarray(roster)])
            source.pump()
        for t in range(cut - backlog, cut):
            source.submit("mover", positions[t][np.asarray(roster)])
        source.churn_session("mover", change)
        post = list(range(cut, universe.horizon + 1))
        if post:
            source.submit("mover", positions[post[0]][gather])
        snapshot, pending = source.suspend_session("mover")
        target.adopt_session(snapshot, pending)
        for t in post[1:]:
            target.submit("mover", positions[t][gather])
        target.drain()
        streamed = target.close_session("mover")
    _assert_steps_identical(serial.steps, streamed.steps)
