"""Regression tests for engine scheduling fairness and lifecycle.

Three bugs pinned here:

* ``_collect_batch`` used to walk ``self._queues`` in dict insertion
  order on every pump, so with ``max_batch`` smaller than the number of
  open rooms the latest-opened rooms were *permanently* starved — the
  collection now round-robins from a rotating cursor;
* ``close_session`` used to raise for a queue holding only shed markers
  even though collection applies them for free, so an overloaded room
  could never be closed;
* ``pump()`` promised "completed records" but silently dropped the shed
  records applied during collection, so replay drivers counting the
  return value undercounted ticks.
"""

import pytest

from repro.core import AfterProblem
from repro.models.baselines import NearestRecommender
from repro.obs import EventLog
from repro.serving import SessionEngine

from .conftest import make_room


def open_rooms(engine, count, num_steps=6, num_users=8):
    """Open ``count`` distinct rooms; returns their (id, room) pairs."""
    rooms = []
    for index in range(count):
        room = make_room("timik", num_users, num_steps, seed=200 + index)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(),
                            session_id=f"room{index}")
        rooms.append((f"room{index}", room))
    return rooms


class TestRoundRobinCollection:
    def test_no_starvation_at_max_batch_one(self):
        """3 rooms, max_batch=1: single-batch pumps stay balanced.

        The insertion-order scheduler processed room0's entire queue
        before room1 ever ran; round-robin keeps per-session processed
        counts within one step of each other after every pump.
        """
        engine = SessionEngine(max_batch=1, max_queue=64)
        rooms = open_rooms(engine, 3, num_steps=3)
        for t in range(3):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])

        for pumps in range(1, 10):
            records = engine.pump(max_batches=1)
            assert len(records) == 1
            counts = [len(engine.session(session_id).steps)
                      for session_id, _ in rooms]
            assert max(counts) - min(counts) <= 1, \
                f"unbalanced after {pumps} pumps: {counts}"
            assert sum(counts) == pumps
        # Exactly 3 steps each, i.e. perfectly fair at the end.
        assert [len(engine.session(sid).steps) for sid, _ in rooms] \
            == [3, 3, 3]

    def test_rotation_survives_session_churn(self):
        """Closing a drained room never derails the cursor."""
        engine = SessionEngine(max_batch=1, max_queue=64)
        rooms = open_rooms(engine, 4, num_steps=2)
        for t in range(2):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])
        # Drain one room with single-step pumps, close it, keep going.
        while len(engine.session("room0").steps) < 2:
            engine.pump(max_batches=1)
        engine.close_session("room0")
        engine.drain()
        for session_id, _ in rooms[1:]:
            assert len(engine.session(session_id).steps) == 2

    def test_full_drain_unchanged_by_rotation(self):
        """A full drain still processes every queued step exactly once."""
        engine = SessionEngine(max_batch=2, max_queue=64)
        rooms = open_rooms(engine, 3, num_steps=4)
        for t in range(4):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])
        engine.drain()
        for session_id, _ in rooms:
            assert [s.t for s in engine.session(session_id).steps] \
                == list(range(4))


class TestCloseWithShedOnlyQueue:
    def engine_with_shed_tail(self):
        """One room whose queue ends as a single shed marker."""
        events = EventLog(enabled=True)
        engine = SessionEngine(max_batch=4, max_queue=2, events=events)
        room = make_room("smm", 8, 3, seed=50)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        for t in range(3):
            engine.submit("solo", room.trajectory.positions[t])
        # Depths at submit: 0, 1 (queued), 2 >= max_queue (shed).
        engine.pump(max_batches=1)
        engine.pump(max_batches=1)
        return engine, events

    def test_shed_only_queue_does_not_block_close(self):
        engine, events = self.engine_with_shed_tail()
        session = engine.close_session("solo")
        assert session.shed_count == 1
        assert [s.t for s in session.steps] == [0, 1, 2]
        assert session.steps[-1].shed
        closes = [r for r in events.records if r["type"] == "session.close"]
        assert len(closes) == 1 and closes[0]["shed"] == 1

    def test_runnable_steps_still_block_close(self):
        engine = SessionEngine(max_batch=4, max_queue=1)
        room = make_room("smm", 8, 3, seed=51)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        engine.submit("solo", room.trajectory.positions[0])   # queued
        engine.submit("solo", room.trajectory.positions[1])   # shed
        with pytest.raises(RuntimeError, match="queued steps"):
            engine.close_session("solo")
        # The refused close must not have consumed the shed marker.
        assert engine.queue_depth == 2
        engine.drain()
        engine.close_session("solo")


class TestPumpReturnsShedRecords:
    def test_drain_returns_one_record_per_submission(self):
        engine = SessionEngine(max_batch=2, max_queue=3)
        room = make_room("hubs", 8, 5, seed=60)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        tickets = [engine.submit("solo", room.trajectory.positions[t])
                   for t in range(6)]
        shed_submitted = sum(t.status == "shed" for t in tickets)
        assert shed_submitted > 0
        records = engine.drain()
        # Every submission — processed or shed — yields its record.
        assert len(records) == len(tickets)
        assert sum(r.shed for r in records) == shed_submitted
        assert sorted(r.t for r in records) == list(range(6))

    def test_returned_records_are_in_consumption_order(self):
        """Per session, pump's records carry strictly increasing t."""
        engine = SessionEngine(max_batch=1, max_queue=4)
        rooms = open_rooms(engine, 2, num_steps=5)
        for t in range(5):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])
        records = engine.pump()
        for session_id, _ in rooms:
            ts = [s.t for s in engine.session(session_id).steps]
            assert ts == sorted(ts)
        assert len(records) == sum(
            len(engine.session(sid).steps) for sid, _ in rooms)

    def test_shed_records_match_session_records(self):
        engine = SessionEngine(max_batch=4, max_queue=2)
        room = make_room("timik", 8, 4, seed=61)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        for t in range(5):
            engine.submit("solo", room.trajectory.positions[t])
        records = engine.drain()
        session_records = engine.session("solo").steps
        assert [(r.t, r.shed) for r in records] \
            == [(r.t, r.shed) for r in session_records]


class TestBatchGroupingUnderResize:
    """A fourth pinned bug: ``_run_batch`` used to key its geometry
    groups by ``session.num_users`` captured at collection time, which
    assumed a session's roster width is immutable.  Queue-ordered churn
    broke that assumption — a room resized mid-episode could land a
    stale-width frame in a ``(B, N, N)`` stack shared with same-keyed
    rooms.  Groups are now keyed by the *frame's* width, submits are
    validated against the roster width at the queue tail, and a guard
    refuses to serve a frame whose width disagrees with the session."""

    def _leave_change(self, room, victim):
        """A RosterChange dropping universe user ``victim`` from a
        full-roster room (target stays at index 0)."""
        from repro.serving.workload import roster_change
        old = list(range(room.num_users))
        new = [u for u in old if u != victim]
        return roster_change(room, "leave", old, new, 0,
                             name=f"{room.name}/resized", beta=0.5,
                             max_render=10,
                             interfaces=room.interfaces_mr)

    def test_resize_never_lands_stale_width_frame_in_a_batch(self):
        """Two same-shape rooms batch together; after one shrinks, the
        mixed-width pump must split the groups and keep both rooms
        advancing with correct per-step widths."""
        with SessionEngine(max_batch=8) as engine:
            rooms = open_rooms(engine, 2, num_steps=6, num_users=8)
            for t in range(2):
                for sid, room in rooms:
                    engine.submit(sid, room.trajectory.positions[t])
                engine.pump()
            room0 = rooms[0][1]
            change = self._leave_change(room0, victim=5)
            engine.churn_session("room0", change)
            gather = [u for u in range(8) if u != 5]
            for t in range(2, 6):
                engine.submit("room0",
                              room0.trajectory.positions[t][gather])
                engine.submit("room1",
                              rooms[1][1].trajectory.positions[t])
                records = engine.pump()
                assert {record.t for record in records} == {t}
            widths = [step.rendered.shape[0]
                      for step in engine.session("room0").steps]
            assert widths == [7] * 6  # churn re-projects history too
            assert engine.session("room0").num_users == 7
            assert engine.session("room1").num_users == 8

    def test_submit_width_is_validated_against_queue_tail(self):
        """After a churn marker is queued, a frame at the *old* width
        is rejected at submit time — not discovered as a shape error
        deep in the geometry stack."""
        with SessionEngine(max_batch=4) as engine:
            (sid, room), = open_rooms(engine, 1, num_steps=6,
                                      num_users=8)
            positions = room.trajectory.positions
            engine.submit(sid, positions[0])   # pending pre-churn frame
            engine.churn_session(sid, self._leave_change(room, victim=3))
            with pytest.raises(ValueError, match="queue tail has 7"):
                engine.submit(sid, positions[1])
            gather = [u for u in range(8) if u != 3]
            engine.submit(sid, positions[1][gather])
            engine.drain()
            assert engine.session(sid).num_users == 7
            assert len(engine.session(sid).steps) == 2

    def test_eager_resize_also_updates_submit_validation(self):
        """With an empty queue the churn applies eagerly; the very next
        submit must already be held to the new width."""
        with SessionEngine(max_batch=4) as engine:
            (sid, room), = open_rooms(engine, 1, num_steps=6,
                                      num_users=8)
            engine.churn_session(sid, self._leave_change(room, victim=6))
            assert engine.session(sid).churn_count == 1
            with pytest.raises(ValueError, match="queue tail has 7"):
                engine.submit(sid, room.trajectory.positions[0])

    def test_stale_width_frame_is_refused_by_the_batch_guard(self):
        """Defence in depth: if a mismatched frame ever reaches the
        batch (here forged by bypassing submit validation), the pump
        refuses to serve it instead of corrupting the (B, N, N) stack."""
        from repro.serving import PendingStep

        with SessionEngine(max_batch=4) as engine:
            (sid, room), = open_rooms(engine, 1, num_steps=6,
                                      num_users=8)
            engine._queues[sid].append(PendingStep(
                positions=room.trajectory.positions[0][:5], shed=False,
                degraded=False, submitted_at=0.0))
            engine._queued += 1
            with pytest.raises(RuntimeError,
                               match="out of queue order"):
                engine.pump()
