"""Regression tests for engine scheduling fairness and lifecycle.

Three bugs pinned here:

* ``_collect_batch`` used to walk ``self._queues`` in dict insertion
  order on every pump, so with ``max_batch`` smaller than the number of
  open rooms the latest-opened rooms were *permanently* starved — the
  collection now round-robins from a rotating cursor;
* ``close_session`` used to raise for a queue holding only shed markers
  even though collection applies them for free, so an overloaded room
  could never be closed;
* ``pump()`` promised "completed records" but silently dropped the shed
  records applied during collection, so replay drivers counting the
  return value undercounted ticks.
"""

import pytest

from repro.core import AfterProblem
from repro.models.baselines import NearestRecommender
from repro.obs import EventLog
from repro.serving import SessionEngine

from .conftest import make_room


def open_rooms(engine, count, num_steps=6, num_users=8):
    """Open ``count`` distinct rooms; returns their (id, room) pairs."""
    rooms = []
    for index in range(count):
        room = make_room("timik", num_users, num_steps, seed=200 + index)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(),
                            session_id=f"room{index}")
        rooms.append((f"room{index}", room))
    return rooms


class TestRoundRobinCollection:
    def test_no_starvation_at_max_batch_one(self):
        """3 rooms, max_batch=1: single-batch pumps stay balanced.

        The insertion-order scheduler processed room0's entire queue
        before room1 ever ran; round-robin keeps per-session processed
        counts within one step of each other after every pump.
        """
        engine = SessionEngine(max_batch=1, max_queue=64)
        rooms = open_rooms(engine, 3, num_steps=3)
        for t in range(3):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])

        for pumps in range(1, 10):
            records = engine.pump(max_batches=1)
            assert len(records) == 1
            counts = [len(engine.session(session_id).steps)
                      for session_id, _ in rooms]
            assert max(counts) - min(counts) <= 1, \
                f"unbalanced after {pumps} pumps: {counts}"
            assert sum(counts) == pumps
        # Exactly 3 steps each, i.e. perfectly fair at the end.
        assert [len(engine.session(sid).steps) for sid, _ in rooms] \
            == [3, 3, 3]

    def test_rotation_survives_session_churn(self):
        """Closing a drained room never derails the cursor."""
        engine = SessionEngine(max_batch=1, max_queue=64)
        rooms = open_rooms(engine, 4, num_steps=2)
        for t in range(2):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])
        # Drain one room with single-step pumps, close it, keep going.
        while len(engine.session("room0").steps) < 2:
            engine.pump(max_batches=1)
        engine.close_session("room0")
        engine.drain()
        for session_id, _ in rooms[1:]:
            assert len(engine.session(session_id).steps) == 2

    def test_full_drain_unchanged_by_rotation(self):
        """A full drain still processes every queued step exactly once."""
        engine = SessionEngine(max_batch=2, max_queue=64)
        rooms = open_rooms(engine, 3, num_steps=4)
        for t in range(4):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])
        engine.drain()
        for session_id, _ in rooms:
            assert [s.t for s in engine.session(session_id).steps] \
                == list(range(4))


class TestCloseWithShedOnlyQueue:
    def engine_with_shed_tail(self):
        """One room whose queue ends as a single shed marker."""
        events = EventLog(enabled=True)
        engine = SessionEngine(max_batch=4, max_queue=2, events=events)
        room = make_room("smm", 8, 3, seed=50)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        for t in range(3):
            engine.submit("solo", room.trajectory.positions[t])
        # Depths at submit: 0, 1 (queued), 2 >= max_queue (shed).
        engine.pump(max_batches=1)
        engine.pump(max_batches=1)
        return engine, events

    def test_shed_only_queue_does_not_block_close(self):
        engine, events = self.engine_with_shed_tail()
        session = engine.close_session("solo")
        assert session.shed_count == 1
        assert [s.t for s in session.steps] == [0, 1, 2]
        assert session.steps[-1].shed
        closes = [r for r in events.records if r["type"] == "session.close"]
        assert len(closes) == 1 and closes[0]["shed"] == 1

    def test_runnable_steps_still_block_close(self):
        engine = SessionEngine(max_batch=4, max_queue=1)
        room = make_room("smm", 8, 3, seed=51)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        engine.submit("solo", room.trajectory.positions[0])   # queued
        engine.submit("solo", room.trajectory.positions[1])   # shed
        with pytest.raises(RuntimeError, match="queued steps"):
            engine.close_session("solo")
        # The refused close must not have consumed the shed marker.
        assert engine.queue_depth == 2
        engine.drain()
        engine.close_session("solo")


class TestPumpReturnsShedRecords:
    def test_drain_returns_one_record_per_submission(self):
        engine = SessionEngine(max_batch=2, max_queue=3)
        room = make_room("hubs", 8, 5, seed=60)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        tickets = [engine.submit("solo", room.trajectory.positions[t])
                   for t in range(6)]
        shed_submitted = sum(t.status == "shed" for t in tickets)
        assert shed_submitted > 0
        records = engine.drain()
        # Every submission — processed or shed — yields its record.
        assert len(records) == len(tickets)
        assert sum(r.shed for r in records) == shed_submitted
        assert sorted(r.t for r in records) == list(range(6))

    def test_returned_records_are_in_consumption_order(self):
        """Per session, pump's records carry strictly increasing t."""
        engine = SessionEngine(max_batch=1, max_queue=4)
        rooms = open_rooms(engine, 2, num_steps=5)
        for t in range(5):
            for session_id, room in rooms:
                engine.submit(session_id, room.trajectory.positions[t])
        records = engine.pump()
        for session_id, _ in rooms:
            ts = [s.t for s in engine.session(session_id).steps]
            assert ts == sorted(ts)
        assert len(records) == sum(
            len(engine.session(sid).steps) for sid, _ in rooms)

    def test_shed_records_match_session_records(self):
        engine = SessionEngine(max_batch=4, max_queue=2)
        room = make_room("timik", 8, 4, seed=61)
        engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                            NearestRecommender(), session_id="solo")
        for t in range(5):
            engine.submit("solo", room.trajectory.positions[t])
        records = engine.drain()
        session_records = engine.session("solo").steps
        assert [(r.t, r.shed) for r in records] \
            == [(r.t, r.shed) for r in session_records]
