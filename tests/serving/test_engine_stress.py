"""Deterministic stress tests for the micro-batching session engine.

The engine's admission control is pure queue-depth arithmetic, so even
a run with deliberately *slow* recommender steps (injected sleeps) and a
capped worker pool must be exactly reproducible: no step lost or
duplicated, per-room step order strictly monotone, and the set of shed
steps equal — as a set of ``(session, step)`` pairs — to the
``session.shed`` events and to the shed tickets handed out at submit
time.  Everything here is seeded; nothing depends on wall-clock.
"""

import time
from collections import Counter

import numpy as np

from repro.core import AfterProblem, evaluate_episode
from repro.models.baselines import NearestRecommender
from repro.obs import EventLog
from repro.serving import ReplayDriver, SessionEngine

from .conftest import make_room

NUM_ROOMS = 8
NUM_STEPS = 6          # horizon: rooms stream NUM_STEPS + 1 frames


class SlowStepRecommender(NearestRecommender):
    """Nearest with seeded sleeps injected into ~20% of its steps.

    The sleep set is drawn from the instance's seed, not from time, so
    two runs slow down exactly the same (room, step) pairs.  Stressing
    with real delays proves the shed pattern is schedule-determined,
    not timing-determined.
    """

    def __init__(self, seed: int, sleep_s: float = 0.002):
        self._slow = set(np.random.default_rng(seed)
                         .choice(NUM_STEPS + 1,
                                 size=max(1, (NUM_STEPS + 1) // 5),
                                 replace=False).tolist())
        self._sleep_s = sleep_s
        self._calls = 0

    def recommend(self, frame):
        if self._calls in self._slow:
            time.sleep(self._sleep_s)
        self._calls += 1
        return super().recommend(frame)


def run_workload(*, workers, pump_interval, max_queue, degrade_at=None,
                 slow=False):
    """One seeded multi-room replay; returns everything observable."""
    rooms = [make_room("timik", 8, NUM_STEPS, seed=100 + index)
             for index in range(NUM_ROOMS)]
    events = EventLog(enabled=True)
    engine = SessionEngine(max_batch=4, max_queue=max_queue,
                           degrade_at=degrade_at, workers=workers,
                           events=events)
    driver = ReplayDriver(engine, pump_interval=pump_interval)
    for index, room in enumerate(rooms):
        recommender = (SlowStepRecommender(seed=index) if slow
                       else NearestRecommender())
        driver.add_room(room, target=0, recommender=recommender,
                        session_id=f"room{index}")
    tickets = driver.run()
    sessions = {f"room{index}": engine.session(f"room{index}")
                for index in range(NUM_ROOMS)}
    engine.close()
    return rooms, sessions, tickets, events


def test_no_lost_or_duplicated_steps_and_monotone_order():
    _, sessions, tickets, _ = run_workload(
        workers=4, pump_interval=3, max_queue=10, slow=True)
    for session_id, session in sessions.items():
        indices = [step.t for step in session.steps]
        # Exactly one record per submitted frame, in submit order.
        assert indices == list(range(NUM_STEPS + 1)), session_id
        assert len(tickets[session_id]) == NUM_STEPS + 1


def test_shed_steps_match_shed_events_and_tickets():
    _, sessions, tickets, events = run_workload(
        workers=4, pump_interval=3, max_queue=10, slow=True)
    shed_steps = sorted((sid, step.t) for sid, session in sessions.items()
                        for step in session.steps if step.shed)
    shed_events = sorted((record["session_id"], record["step"])
                         for record in events.records
                         if record["type"] == "session.shed")
    shed_tickets = sorted((ticket.session_id, ticket.t)
                          for batch in tickets.values() for ticket in batch
                          if ticket.status == "shed")
    assert shed_steps == shed_events == shed_tickets
    assert shed_steps   # the workload genuinely overloads the queue
    for session in sessions.values():
        assert session.shed_count == sum(s.shed for s in session.steps)


def test_degraded_steps_match_degrade_events():
    _, sessions, tickets, events = run_workload(
        workers=2, pump_interval=2, max_queue=16, degrade_at=6, slow=True)
    degraded = sorted((sid, step.t) for sid, session in sessions.items()
                      for step in session.steps if step.degraded)
    degrade_events = sorted((record["session_id"], record["step"])
                            for record in events.records
                            if record["type"] == "session.degrade")
    degraded_tickets = sorted((ticket.session_id, ticket.t)
                              for batch in tickets.values()
                              for ticket in batch
                              if ticket.status == "degraded")
    assert degraded == degrade_events == degraded_tickets
    assert degraded


def fingerprint(sessions, tickets):
    """Everything that must be identical across repeated runs."""
    return (
        sorted((ticket.session_id, ticket.t, ticket.status)
               for batch in tickets.values() for ticket in batch),
        {sid: [(step.t, step.shed, step.degraded,
                step.rendered.tobytes()) for step in session.steps]
         for sid, session in sessions.items()},
    )


def test_stress_run_is_deterministic():
    """Slow steps + threads + overload: two runs are bit-identical."""
    first = run_workload(workers=4, pump_interval=3, max_queue=10,
                         degrade_at=7, slow=True)
    second = run_workload(workers=4, pump_interval=3, max_queue=10,
                          degrade_at=7, slow=True)
    assert fingerprint(first[1], first[2]) == fingerprint(second[1],
                                                          second[2])
    # ... and independent of the worker count and injected sleeps: the
    # shed/degrade pattern is decided at submit time, before either can
    # matter.
    third = run_workload(workers=1, pump_interval=3, max_queue=10,
                         degrade_at=7, slow=False)
    assert fingerprint(first[1], first[2]) == fingerprint(third[1],
                                                          third[2])


def test_processed_prefix_matches_offline_before_first_shed():
    """Until a room first sheds, its stream equals the offline episode."""
    rooms, sessions, _, _ = run_workload(
        workers=4, pump_interval=3, max_queue=10, slow=True)
    for index, room in enumerate(rooms):
        session = sessions[f"room{index}"]
        reference = evaluate_episode(
            AfterProblem(room=room, target=0, beta=0.5),
            NearestRecommender())
        shed_at = next((step.t for step in session.steps if step.shed),
                       NUM_STEPS + 1)
        streamed = np.stack([step.rendered for step in session.steps])
        np.testing.assert_array_equal(
            reference.recommendations[:shed_at], streamed[:shed_at])


def test_close_session_reports_counts():
    _, _, _, _ = run_workload(workers=1, pump_interval=1, max_queue=64)
    events = EventLog(enabled=True)
    engine = SessionEngine(max_batch=4, events=events)
    room = make_room("smm", 8, 3, seed=5)
    engine.open_session(AfterProblem(room=room, target=0, beta=0.5),
                        NearestRecommender(), session_id="solo")
    for t in range(4):
        engine.submit("solo", room.trajectory.positions[t])
    engine.drain()
    engine.close_session("solo")
    closes = [r for r in events.records if r["type"] == "session.close"]
    assert len(closes) == 1
    assert closes[0]["steps"] == 4
    assert closes[0]["shed"] == 0
    counts = Counter(r["type"] for r in events.records)
    assert counts["session.open"] == 1
