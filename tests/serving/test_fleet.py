"""The room-sharded serving fleet: placement, parity, failure, obs.

Each :class:`~repro.serving.Fleet` test forks real worker processes (the
transport is the production length-prefixed pipe protocol, not a mock),
so everything here is fork-gated and sized small.  Migration-specific
parity lives in ``test_migration_parity.py``.
"""

import multiprocessing
import os
import signal

import pytest

from repro.core import AfterProblem, evaluate_episode
from repro.models.baselines import NearestRecommender
from repro.models.poshgnn import POSHGNN
from repro.obs import PERF, EventLog
from repro.serving import Fleet, HashRing, ShardFailure

from .conftest import make_room
from .test_stream_parity import assert_episodes_identical

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        keys = [f"room{i}/t{i % 7}" for i in range(100)]
        first = [HashRing(4).place(key) for key in keys]
        second = [HashRing(4).place(key) for key in keys]
        assert first == second

    def test_every_shard_owns_keys(self):
        ring = HashRing(4)
        owners = {ring.place(f"session-{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_adding_a_shard_only_moves_keys_onto_it(self):
        """Consistent hashing: growing the ring never reshuffles the
        keys that stay — a key either keeps its shard or moves to the
        new one."""
        keys = [f"room-{i}" for i in range(300)]
        before = HashRing(3)
        after = HashRing(4)
        moved = 0
        for key in keys:
            old, new = before.place(key), after.place(key)
            if old != new:
                assert new == 3, f"{key} moved {old}->{new}, not to shard 3"
                moved += 1
        assert 0 < moved < len(keys)

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


def stream_through_fleet(fleet, cases):
    """Open, stream and close ``(problem, recommender)`` cases; returns
    the per-session results keyed by session id."""
    ids = [fleet.open_session(problem, recommender)
           for problem, recommender in cases]
    num_steps = max(len(case[0].room.trajectory.positions)
                    for case in cases)
    for t in range(num_steps):
        fleet.submit_many(
            (session_id, case[0].room.trajectory.positions[t])
            for session_id, case in zip(ids, cases)
            if t < len(case[0].room.trajectory.positions))
        fleet.drain()
    return {session_id: fleet.close_session(session_id)
            for session_id in ids}


@fork_available
class TestFleetServing:
    def test_streamed_results_match_offline_eval(self):
        cases = []
        for index in range(4):
            room = make_room("timik", 8, 3, seed=300 + index)
            cases.append((AfterProblem(room=room, target=index % 8,
                                       beta=0.5),
                          NearestRecommender() if index % 2
                          else POSHGNN(seed=index)))
        with Fleet(2, max_batch=8, max_queue=64) as fleet:
            spread = {fleet.place(f"{c[0].room.name}/t{c[0].target}")
                      for c in cases}
            results = stream_through_fleet(fleet, cases)
        assert len(results) == 4
        # Compare each against a fresh offline evaluation.
        for index, (problem, _) in enumerate(cases):
            recommender = (NearestRecommender() if index % 2
                           else POSHGNN(seed=index))
            reference = evaluate_episode(problem, recommender)
            session_id = f"{problem.room.name}/t{problem.target}"
            assert_episodes_identical(reference, results[session_id])
        # And the placements came off the ring, not a default shard.
        assert spread <= {0, 1} and spread

    def test_fleet_budget_is_split_across_shards(self):
        """Fleet-wide max_queue=4 over 2 shards → 2 per shard, so the
        third frame to one room is shed by its shard's own ladder."""
        room = make_room("smm", 8, 6, seed=310)
        with Fleet(2, max_batch=4, max_queue=4) as fleet:
            sid = fleet.open_session(
                AfterProblem(room=room, target=0, beta=0.5),
                NearestRecommender())
            statuses = [fleet.submit(
                sid, room.trajectory.positions[t]).status
                for t in range(4)]
            fleet.drain()
            fleet.close_session(sid)
        assert statuses == ["queued", "queued", "shed", "shed"]

    def test_single_shard_keeps_engine_semantics(self):
        """num_shards=1 must behave exactly like one local engine."""
        room = make_room("hubs", 8, 4, seed=320)
        problem = AfterProblem(room=room, target=2, beta=0.5)
        reference = evaluate_episode(problem, NearestRecommender())
        with Fleet(1, max_batch=4, max_queue=64) as fleet:
            results = stream_through_fleet(
                fleet, [(problem, NearestRecommender())])
        assert_episodes_identical(reference,
                                  results[f"{room.name}/t2"])

    def test_explicit_shard_placement_and_reroute(self):
        room = make_room("timik", 8, 3, seed=330)
        with Fleet(2, max_batch=4, max_queue=64) as fleet:
            sid = fleet.open_session(
                AfterProblem(room=room, target=0, beta=0.5),
                NearestRecommender(), shard=1)
            assert fleet.shard_of(sid) == 1
            assert fleet.sessions_on(1) == [sid]
            assert fleet.sessions_on(0) == []
            with pytest.raises(ValueError):
                fleet.open_session(
                    AfterProblem(room=room, target=1, beta=0.5),
                    NearestRecommender(), shard=7)
            fleet.close_session(sid)

    def test_duplicate_session_id_rejected(self):
        room = make_room("timik", 8, 3, seed=331)
        with Fleet(2) as fleet:
            fleet.open_session(AfterProblem(room=room, target=0, beta=0.5),
                               NearestRecommender(), session_id="dup")
            with pytest.raises(ValueError, match="already open"):
                fleet.open_session(
                    AfterProblem(room=room, target=1, beta=0.5),
                    NearestRecommender(), session_id="dup")

    def test_worker_errors_surface_in_the_router(self):
        """An in-worker exception crosses the pipe as itself — the
        worker keeps serving afterwards."""
        room = make_room("smm", 8, 3, seed=332)
        with Fleet(1) as fleet:
            sid = fleet.open_session(
                AfterProblem(room=room, target=0, beta=0.5),
                NearestRecommender())
            with pytest.raises(KeyError):
                fleet.submit("no-such-session",
                             room.trajectory.positions[0])
            # The shard is still alive and serving.
            fleet.submit(sid, room.trajectory.positions[0])
            fleet.drain()
            fleet.close_session(sid)


@fork_available
class TestShardFailure:
    def test_dead_shard_raises_and_names_its_sessions(self):
        room_a = make_room("timik", 8, 3, seed=340)
        room_b = make_room("smm", 8, 3, seed=341)
        with Fleet(2, max_batch=4, max_queue=64) as fleet:
            sid_a = fleet.open_session(
                AfterProblem(room=room_a, target=0, beta=0.5),
                NearestRecommender(), shard=0)
            sid_b = fleet.open_session(
                AfterProblem(room=room_b, target=0, beta=0.5),
                NearestRecommender(), shard=1)
            os.kill(fleet._shards[0].process.pid, signal.SIGKILL)
            fleet._shards[0].process.join(timeout=5.0)
            with pytest.raises(ShardFailure) as failure:
                for _ in range(3):   # first send may land in the pipe
                    fleet.submit(sid_a, room_a.trajectory.positions[0])
            assert failure.value.shard == 0
            assert failure.value.sessions == [sid_a]
            # The dead shard reports -1 depth; the survivor still serves.
            assert fleet.queue_depths()[0] == -1
            fleet.submit(sid_b, room_b.trajectory.positions[0])
            fleet.drain()
            fleet.close_session(sid_b)


@fork_available
class TestFleetObs:
    def test_collect_obs_merges_aggregate_and_shard_tagged(self):
        room = make_room("timik", 8, 3, seed=350)
        events = EventLog(enabled=True)
        PERF.reset().enable()
        try:
            with Fleet(2, max_batch=4, max_queue=64,
                       events=events) as fleet:
                sids = [fleet.open_session(
                    AfterProblem(room=room, target=t, beta=0.5),
                    NearestRecommender(), shard=t % 2,
                    session_id=f"obs{t}") for t in range(2)]
                for t in range(3):
                    fleet.submit_many(
                        (sid, room.trajectory.positions[t])
                        for sid in sids)
                    fleet.drain()
                states = fleet.collect_obs()
                for sid in sids:
                    fleet.close_session(sid)
            assert [s["shard"] for s in states] == [0, 1]
            # Aggregate fold: both shards pumped, so the unprefixed
            # timer holds the sum of the shard-tagged ones.
            pump = PERF.timers["serving.pump"]
            tagged = [PERF.timers["shard0/serving.pump"],
                      PERF.timers["shard1/serving.pump"]]
            assert pump.count == sum(t.count for t in tagged)
            assert pump.total == pytest.approx(
                sum(t.total for t in tagged))
            assert PERF.histograms["serving.step_latency_s"].count == 6
        finally:
            PERF.disable().reset()
        # Worker session events arrive shard-tagged; router events
        # carry the fleet lifecycle.
        types = {record["type"] for record in events.records}
        assert {"fleet.open", "fleet.close", "session.open",
                "session.close"} <= types
        shards = {record["shard"] for record in events.records
                  if record["type"] == "session.open"}
        assert shards == {0, 1}

    def test_telemetry_sample_is_read_only_and_per_shard(self):
        """The ``sample`` command reads every live shard without
        resetting worker registries, so a later ``collect_obs`` fold is
        still exact — sampling composes with end-of-run accounting."""
        from repro.obs import TelemetrySampler

        room = make_room("timik", 8, 3, seed=352)
        PERF.reset().enable()
        try:
            with Fleet(2, max_batch=4, max_queue=64) as fleet:
                sids = [fleet.open_session(
                    AfterProblem(room=room, target=t, beta=0.5),
                    NearestRecommender(), shard=t % 2,
                    session_id=f"tel{t}") for t in range(2)]
                sampler = TelemetrySampler(fleet)
                sampler.sample(now=0.0)
                for t in range(3):
                    fleet.submit_many(
                        (sid, room.trajectory.positions[t])
                        for sid in sids)
                    fleet.drain()
                    sampler.sample(now=float(t + 1))
                raw = fleet.telemetry_sample()
                assert [entry["shard"] for entry in raw] == [0, 1]
                for shard in (0, 1):
                    telemetry = sampler.shards[shard]
                    assert telemetry.aggregate("serving.open_sessions",
                                               "last") == 1.0
                    # each shard stepped its session every tick
                    assert telemetry.aggregate(
                        "serving.step_latency_s", "count") == 3.0
                    assert telemetry.aggregate("serving.shed_rate",
                                               "max") == 0.0
                fleet.collect_obs()
                for sid in sids:
                    fleet.close_session(sid)
            # Sampling consumed nothing: the fold still sees all steps.
            assert PERF.histograms["serving.step_latency_s"].count == 6
        finally:
            PERF.disable().reset()

    def test_shard_failure_emits_event_and_dumps_incident(self, tmp_path):
        """_mark_dead feeds the flight recorder: one bundle per lost
        shard, with the events that preceded the failure inside it."""
        from repro.obs import FlightRecorder, load_incident

        room = make_room("timik", 8, 3, seed=353)
        events = EventLog(enabled=True)
        recorder = FlightRecorder(directory=tmp_path)
        recorder.attach(events=events)
        try:
            with Fleet(2, max_batch=4, max_queue=64, events=events,
                       recorder=recorder) as fleet:
                sid = fleet.open_session(
                    AfterProblem(room=room, target=0, beta=0.5),
                    NearestRecommender(), shard=0)
                os.kill(fleet._shards[0].process.pid, signal.SIGKILL)
                fleet._shards[0].process.join(timeout=5.0)
                with pytest.raises(ShardFailure):
                    for _ in range(3):
                        fleet.submit(sid, room.trajectory.positions[0])
                failures = [r for r in events.records
                            if r["type"] == "fleet.shard_failure"]
                assert len(failures) == 1
                assert failures[0]["shard"] == 0
                assert failures[0]["sessions"] == [sid]
                assert len(recorder.dumps) == 1
                incident = load_incident(recorder.dumps[0])
                assert "shard0" in incident["manifest"]["reason"]
                kinds = [r["type"] for r in incident["events"]]
                assert "fleet.shard_failure" in kinds
                assert "fleet.open" in kinds
        finally:
            recorder.detach()

    def test_shutdown_folds_final_worker_state(self):
        room = make_room("smm", 8, 2, seed=351)
        PERF.reset().enable()
        try:
            fleet = Fleet(1, max_batch=4, max_queue=16)
            sid = fleet.open_session(
                AfterProblem(room=room, target=0, beta=0.5),
                NearestRecommender())
            fleet.submit(sid, room.trajectory.positions[0])
            fleet.drain()
            fleet.close_session(sid)
            fleet.close()
            assert PERF.histograms["serving.step_latency_s"].count == 1
            assert "shard0/serving.pump" in PERF.timers
        finally:
            PERF.disable().reset()
