"""Property suite: live migration never changes an episode's result.

:meth:`~repro.serving.Fleet.migrate` promises that a room moved between
real worker processes — at *any* point in its stream, pending queue and
all — finishes with an :class:`~repro.core.evaluation.EpisodeResult`
exactly equal (every deterministic field) to a run that never moved.
Hypothesis drives the cut point, room shape, recommender and queue
state; each example streams through a forked two-shard fleet using the
production pipe transport.

Three parity obligations are pinned separately:

* a clean cut (queues drained before the move) matches the *offline*
  :func:`~repro.core.evaluation.evaluate_episode` reference;
* a cut with **undrained pending steps** still matches — the queue is
  handed off verbatim, never re-admitted;
* a cut while the admission ladder is **degrading/shedding** matches an
  unmigrated fleet run under the identical budget, because the
  submit-time admission decisions travel with the queue.
"""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AfterProblem, evaluate_episode
from repro.models.baselines import NearestRecommender
from repro.models.poshgnn import POSHGNN
from repro.serving import Fleet

from .conftest import DATASETS, make_room
from .test_stream_parity import assert_episodes_identical

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")

pytestmark = fork_available

RECOMMENDERS = {
    "nearest": lambda: NearestRecommender(),
    "poshgnn": lambda: POSHGNN(seed=11),
}

# Offline references are deterministic in the case parameters, so each
# distinct room/recommender pair is evaluated once across all examples.
_REFERENCE_CACHE: dict = {}


@st.composite
def migration_cases(draw):
    """(room, problem, recommender name, cut step, target shard)."""
    dataset = draw(st.sampled_from(DATASETS))
    num_users = draw(st.integers(6, 9))
    num_steps = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 500))
    room = make_room(dataset, num_users, num_steps, seed)
    target = draw(st.integers(0, num_users - 1))
    name = draw(st.sampled_from(sorted(RECOMMENDERS)))
    cut = draw(st.integers(0, num_steps))       # cut after `cut` frames
    shard = draw(st.integers(0, 1))
    return room, AfterProblem(room=room, target=target, beta=0.5), \
        name, cut, shard


def offline_reference(problem, name):
    # The room's size and length vary independently of its seed, so the
    # cache key must carry them or same-seed rooms of different shapes
    # collide and an example is compared against a stale reference.
    room = problem.room
    key = (room.name, room.seed, room.preference.shape[0],
           len(room.trajectory.positions), problem.target, name)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = evaluate_episode(problem,
                                                 RECOMMENDERS[name]())
    return _REFERENCE_CACHE[key]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(migration_cases())
def test_clean_cut_matches_offline_reference(case):
    """Drained-queue migration at an arbitrary step is invisible."""
    room, problem, name, cut, shard = case
    positions = room.trajectory.positions
    with Fleet(2, max_batch=4, max_queue=64) as fleet:
        sid = fleet.open_session(problem, RECOMMENDERS[name]())
        for t in range(cut):
            fleet.submit(sid, positions[t])
        fleet.drain()
        new_shard = fleet.migrate(sid, shard)
        assert new_shard == shard == fleet.shard_of(sid)
        for t in range(cut, len(positions)):
            fleet.submit(sid, positions[t])
        fleet.drain()
        result = fleet.close_session(sid)
    assert_episodes_identical(offline_reference(problem, name), result)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(migration_cases(), st.integers(1, 3))
def test_pending_queue_rides_the_migration(case, backlog):
    """Undrained submits are handed off verbatim, not re-admitted."""
    room, problem, name, cut, shard = case
    positions = room.trajectory.positions
    cut = min(cut, len(positions) - 1)          # leave work to queue
    with Fleet(2, max_batch=4, max_queue=64) as fleet:
        sid = fleet.open_session(problem, RECOMMENDERS[name]())
        for t in range(cut):
            fleet.submit(sid, positions[t])
        fleet.drain()
        # Queue up unprocessed frames, then move with them in flight.
        queued = positions[cut:cut + backlog]
        for frame in queued:
            fleet.submit(sid, frame)
        fleet.migrate(sid, shard)
        for t in range(cut + len(queued), len(positions)):
            fleet.submit(sid, positions[t])
        fleet.drain()
        result = fleet.close_session(sid)
    assert_episodes_identical(offline_reference(problem, name), result)


def stream_with_overload(fleet, problem, recommender, cut, shard):
    """Stream a room two-frames-per-pump so the ladder degrades/sheds;
    optionally migrate after ``cut`` submitted frames."""
    positions = problem.room.trajectory.positions
    sid = fleet.open_session(problem, recommender)
    tickets = []
    for t in range(len(positions)):
        tickets.append(fleet.submit(sid, positions[t]).status)
        if t % 2 == 1:
            fleet.pump(max_batches=1)
        if cut is not None and t + 1 == cut:
            fleet.migrate(sid, shard)
    fleet.drain()
    return tickets, fleet.close_session(sid)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(DATASETS), st.integers(0, 200),
       st.integers(1, 6), st.integers(0, 1))
def test_mid_degrade_cut_matches_unmigrated_fleet(dataset, seed, cut,
                                                  shard):
    """Migration under admission pressure: the shed/degrade pattern —
    decided at submit time — travels with the queue, so the migrated
    run's tickets AND result equal the unmigrated run's."""
    room = make_room(dataset, 8, 6, seed)
    problem = AfterProblem(room=room, target=0, beta=0.5)
    budgets = dict(max_batch=1, max_queue=6, degrade_at=2)
    with Fleet(2, **budgets) as fleet:
        baseline_tickets, baseline = stream_with_overload(
            fleet, problem, NearestRecommender(), None, shard)
    with Fleet(2, **budgets) as fleet:
        migrated_tickets, migrated = stream_with_overload(
            fleet, problem, NearestRecommender(), cut, shard)
    assert migrated_tickets == baseline_tickets
    assert_episodes_identical(baseline, migrated)


def test_double_migration_round_trip():
    """There and back again: two migrations still match offline."""
    room = make_room("timik", 8, 4, seed=77)
    problem = AfterProblem(room=room, target=3, beta=0.5)
    positions = room.trajectory.positions
    with Fleet(2, max_batch=4, max_queue=64) as fleet:
        sid = fleet.open_session(problem, POSHGNN(seed=11))
        home = fleet.shard_of(sid)
        away = 1 - home
        fleet.submit(sid, positions[0])
        fleet.drain()
        fleet.migrate(sid, away)
        fleet.submit(sid, positions[1])
        fleet.migrate(sid, home)        # pending step rides back home
        for t in range(2, len(positions)):
            fleet.submit(sid, positions[t])
        fleet.drain()
        result = fleet.close_session(sid)
    assert_episodes_identical(offline_reference(problem, "poshgnn"),
                              result)


def test_migrate_to_same_shard_is_a_noop():
    room = make_room("smm", 8, 3, seed=78)
    problem = AfterProblem(room=room, target=0, beta=0.5)
    with Fleet(2, max_batch=4, max_queue=64) as fleet:
        sid = fleet.open_session(problem, NearestRecommender())
        shard = fleet.shard_of(sid)
        assert fleet.migrate(sid, shard) == shard
        with pytest.raises(ValueError):
            fleet.migrate(sid, 5)
        for frame in room.trajectory.positions:
            fleet.submit(sid, frame)
        fleet.drain()
        result = fleet.close_session(sid)
    assert_episodes_identical(
        offline_reference(problem, "nearest"), result)
