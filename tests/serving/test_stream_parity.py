"""Property suite: streaming serving is bit-identical to offline eval.

The serving contract (docs/SERVING.md) is that a room streamed through
:class:`repro.serving.RoomSession` — serially, through the micro-batched
:class:`~repro.serving.SessionEngine`, or suspended and resumed half way
— produces *exactly* the recommendations, utilities and carried
recurrent state of :func:`repro.core.evaluation.evaluate_episode` on the
same trajectory.  Hypothesis draws random rooms (dataset family, size,
horizon, seed), targets, betas and recommenders; every comparison below
is exact (``==`` / ``assert_array_equal``), never approximate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AfterProblem, evaluate_episode
from repro.models.baselines import (
    DCRNNRecommender,
    NearestRecommender,
    RandomRecommender,
    TGCNRecommender,
)
from repro.models.poshgnn import POSHGNN
from repro.serving import ReplayDriver, RoomSession, SessionEngine, stream_episode

from .conftest import DATASETS, make_room

# Factories, not instances: every evaluation path must start from a
# fresh recommender so recurrent/RNG state never leaks between the
# reference and streamed runs.
RECOMMENDERS = {
    "nearest": lambda: NearestRecommender(),
    "random": lambda: RandomRecommender(seed=7),
    "poshgnn": lambda: POSHGNN(seed=1),
    "poshgnn-nolwp": lambda: POSHGNN(use_lwp=False, seed=2),
    "dcrnn": lambda: DCRNNRecommender(seed=3),
    "tgcn": lambda: TGCNRecommender(seed=4),
}


@st.composite
def episode_cases(draw, recommenders=tuple(RECOMMENDERS)):
    """(room, target, beta, recommender-factory) for one parity check."""
    dataset = draw(st.sampled_from(DATASETS))
    num_users = draw(st.integers(6, 12))
    num_steps = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2 ** 16))
    target = draw(st.integers(0, num_users - 1))
    beta = draw(st.sampled_from((0.0, 0.3, 0.5, 0.8, 1.0)))
    name = draw(st.sampled_from(recommenders))
    room = make_room(dataset, num_users, num_steps, seed)
    return room, target, beta, RECOMMENDERS[name]


def assert_episodes_identical(reference, streamed):
    """Exact equality of every deterministic EpisodeResult field."""
    np.testing.assert_array_equal(reference.recommendations,
                                  streamed.recommendations)
    assert reference.after_utility == streamed.after_utility
    assert reference.preference == streamed.preference
    assert reference.presence == streamed.presence
    assert reference.occlusion_rate == streamed.occlusion_rate
    np.testing.assert_array_equal(reference.per_step_after,
                                  streamed.per_step_after)


def assert_state_identical(reference: dict, streamed: dict):
    """Exact equality of two ``carried_state`` dicts."""
    assert reference.keys() == streamed.keys()
    for key, expected in reference.items():
        actual = streamed[key]
        if expected is None:
            assert actual is None, key
        else:
            np.testing.assert_array_equal(expected, actual, err_msg=key)


@settings(max_examples=80, deadline=None)
@given(episode_cases())
def test_stream_matches_reference_episode(case):
    room, target, beta, factory = case
    reference = evaluate_episode(
        AfterProblem(room=room, target=target, beta=beta), factory())
    streamed = stream_episode(
        AfterProblem(room=room, target=target, beta=beta), factory())
    assert_episodes_identical(reference, streamed)


@settings(max_examples=40, deadline=None)
@given(episode_cases(recommenders=("poshgnn", "poshgnn-nolwp")))
def test_lockstep_carried_lwp_state(case):
    """POSHGNN's h_{t-1}/r_{t-1}/A_{t-1} match the offline walk per step."""
    room, target, beta, factory = case
    offline = factory()
    offline.reset(AfterProblem(room=room, target=target, beta=beta))
    problem = AfterProblem(room=room, target=target, beta=beta)
    session = RoomSession(problem, factory()).begin()
    assert_state_identical(offline.carried_state(),
                           session.recommender.carried_state())
    positions = room.trajectory.positions
    for t in range(room.horizon + 1):
        offline_rendered = np.asarray(
            offline.recommend(offline.problem.frame_at(t)), dtype=bool)
        offline_rendered[target] = False
        record = session.step(positions[t])
        np.testing.assert_array_equal(offline_rendered, record.rendered)
        assert_state_identical(offline.carried_state(),
                               session.recommender.carried_state())


@settings(max_examples=50, deadline=None)
@given(episode_cases(), st.data())
def test_suspend_resume_mid_stream(case, data):
    """Cutting a stream anywhere and resuming the snapshot loses nothing."""
    room, target, beta, factory = case
    cut = data.draw(st.integers(0, room.horizon + 1), label="cut")
    reference = evaluate_episode(
        AfterProblem(room=room, target=target, beta=beta), factory())

    session = RoomSession(
        AfterProblem(room=room, target=target, beta=beta), factory()).begin()
    positions = room.trajectory.positions
    for t in range(cut):
        session.step(positions[t])
    snapshot = session.suspend()
    # Poison the original after the snapshot: the resumed session must
    # be fully detached from it.
    for t in range(cut, room.horizon + 1):
        session.step(positions[t])

    resumed = RoomSession.resume(snapshot)
    for t in range(cut, room.horizon + 1):
        resumed.step(positions[t])
    assert_episodes_identical(reference, resumed.result())
    assert_episodes_identical(reference, session.result())


@settings(max_examples=30, deadline=None)
@given(st.lists(episode_cases(), min_size=2, max_size=4),
       st.integers(1, 8))
def test_engine_micro_batch_parity(cases, max_batch):
    """Micro-batched concurrent rooms each equal their solo offline run."""
    engine = SessionEngine(max_batch=max_batch)
    driver = ReplayDriver(engine)
    for index, (room, target, beta, factory) in enumerate(cases):
        driver.add_room(room, target=target, recommender=factory(),
                        session_id=f"case{index}", beta=beta)
    driver.run()
    results = driver.results()
    for index, (room, target, beta, factory) in enumerate(cases):
        reference = evaluate_episode(
            AfterProblem(room=room, target=target, beta=beta), factory())
        assert_episodes_identical(reference, results[f"case{index}"])


def test_resume_restores_partial_metrics():
    """A snapshot's result() equals the original's at the cut point."""
    room = make_room("timik", 10, 4, seed=11)
    problem = AfterProblem(room=room, target=3, beta=0.5)
    session = RoomSession(problem, POSHGNN(seed=1)).begin()
    positions = room.trajectory.positions
    for t in range(3):
        session.step(positions[t])
    snapshot = session.suspend()
    expected = session.result()
    restored = RoomSession.resume(snapshot).result()
    assert_episodes_identical(expected, restored)
    assert expected.runtime_ms == restored.runtime_ms
