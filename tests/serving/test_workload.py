"""Workload DSL goldens: validation, determinism, execution parity.

Three layers, mirroring the contract in docs/WORKLOADS.md:

* **Spec validation** — a typo'd spec must fail loudly.  Unknown fields
  at every nesting level, negative rates, malformed roster bounds and
  overlapping structural events all raise
  :class:`~repro.serving.WorkloadSpecError`.
* **Schedule determinism** — lowering is a pure function of the spec:
  independent generators agree, and the catalogue scenarios hash to
  pinned goldens (the cross-host anchor — if a numpy upgrade ever
  changes ``default_rng`` stream semantics, these fail first).
* **Execution invariance** — one plan drives identical serving outcomes
  regardless of deployment knobs: worker-pool width, in-process engine
  vs forked fleet, and live SLO monitoring vs recorded replay.
"""

import multiprocessing

import numpy as np
import pytest

from repro.models.baselines import NearestRecommender
from repro.obs import PERF, SloMonitor, TelemetrySampler, evaluate_recorded
from repro.serving import (
    CANNED_SPECS,
    Fleet,
    ReplayDriver,
    SessionEngine,
    WorkloadGenerator,
    WorkloadSpec,
    WorkloadSpecError,
    canned_spec,
)

from .test_stream_parity import assert_episodes_identical

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")

#: Schedule hashes for every catalogue scenario at ``ticks=10``.  These
#: pin the exact event stream (full rosters included) byte-for-byte;
#: regenerate with ``WorkloadGenerator(canned_spec(name,
#: ticks=10)).schedule().schedule_hash()`` only after an *intentional*
#: DSL change, and say so in the commit message.
GOLDEN_HASHES = {
    "device_handoff": "a603309cf0c5ddfffdd1702940acdec2",
    "diurnal": "326d1af4c0bc1cd41cd14b779160de03",
    "flash_crowd": "83064aaf1ad23cdec4a85ef82a19c411",
    "merge_split": "e2948ba9e4c38faaa7fb03886dd453cd",
}


def _base_spec(**overrides) -> dict:
    raw = {"name": "t", "seed": 1, "ticks": 8, "dataset": "timik",
           "universe_users": 16, "room_users": [4, 6],
           "rooms_at_start": 1, "max_rooms": 3,
           "arrival": {"kind": "poisson", "rate": 0.2}}
    raw.update(overrides)
    return raw


class TestSpecValidation:
    def test_roundtrip_of_a_valid_spec(self):
        spec = WorkloadSpec.from_dict(_base_spec())
        assert spec.room_users == (4, 6)
        assert spec.arrival["rate"] == 0.2
        # Canonical document form survives re-validation unchanged.
        again = WorkloadSpec.from_dict(spec.to_document())
        assert again == spec

    @pytest.mark.parametrize("mutate", [
        {"bogus_field": 1},
        {"arrival": {"kind": "poisson", "rate": 1.0, "typo": 2}},
        {"arrival": {"kind": "diurnal", "base_rate": 0.1, "rate": 1.0}},
        {"churn": {"join_rte": 0.5}},
        {"lifecycle": {"merge_on": [2]}},
    ], ids=["top-level", "arrival-extra", "arrival-wrong-kind-field",
            "churn", "lifecycle"])
    def test_unknown_fields_rejected(self, mutate):
        with pytest.raises(WorkloadSpecError, match="unknown field"):
            WorkloadSpec.from_dict(_base_spec(**mutate))

    @pytest.mark.parametrize("mutate,match", [
        ({"arrival": {"kind": "poisson", "rate": -1.0}}, "must be >= 0"),
        ({"churn": {"leave_rate": -0.1}}, "must be >= 0"),
        ({"arrival": {"kind": "diurnal", "peak_rate": -2.0}},
         "must be >= 0"),
        ({"arrival": {"kind": "diurnal", "base_rate": 0.1, "period": 0}},
         "period must be > 0"),
        ({"arrival": {"kind": "flash_crowd", "burst_rate": 1.0,
                      "burst_ticks": 0}}, "burst_ticks"),
    ], ids=["poisson-rate", "churn-rate", "diurnal-rate", "period",
            "burst-ticks"])
    def test_negative_rates_rejected(self, mutate, match):
        with pytest.raises(WorkloadSpecError, match=match):
            WorkloadSpec.from_dict(_base_spec(**mutate))

    @pytest.mark.parametrize("lifecycle", [
        {"merge_at": [3, 3]},
        {"split_at": [5, 5]},
        {"merge_at": [2, 4], "split_at": [4]},
    ], ids=["merge-merge", "split-split", "merge-split"])
    def test_overlapping_structural_events_rejected(self, lifecycle):
        with pytest.raises(WorkloadSpecError, match="overlapping"):
            WorkloadSpec.from_dict(_base_spec(lifecycle=lifecycle))

    def test_structural_events_must_fit_horizon(self):
        with pytest.raises(WorkloadSpecError, match=r"\[0, ticks\)"):
            WorkloadSpec.from_dict(
                _base_spec(lifecycle={"merge_at": [8]}))

    @pytest.mark.parametrize("mutate,match", [
        ({"ticks": 0}, "ticks"),
        ({"room_users": [1, 6]}, "room_users"),
        ({"room_users": [6, 4]}, "room_users"),
        ({"room_users": [4]}, "room_users"),
        ({"universe_users": 5}, "cover the largest room"),
        ({"beta": 1.5}, "beta"),
        ({"max_render": 0}, "max_render"),
        ({"max_rooms": 0}, "max_rooms"),
        ({"rooms_at_start": -1}, "rooms_at_start"),
        ({"arrival": {"kind": "lunar"}}, "arrival kind"),
        ({"lifecycle": {"close_after": 0}}, "close_after"),
    ], ids=["ticks", "room-min", "room-order", "room-arity",
            "universe", "beta", "max-render", "max-rooms",
            "rooms-at-start", "arrival-kind", "close-after"])
    def test_bad_values_rejected(self, mutate, match):
        with pytest.raises(WorkloadSpecError, match=match):
            WorkloadSpec.from_dict(_base_spec(**mutate))

    def test_non_dict_spec_rejected(self):
        with pytest.raises(WorkloadSpecError, match="must be a dict"):
            WorkloadSpec.from_dict(["not", "a", "spec"])

    def test_unknown_scenario_name(self):
        with pytest.raises(KeyError, match="available"):
            canned_spec("rush_hour")

    def test_canned_override_clips_structural_events(self):
        # merge_split schedules merges/splits up to tick 20; shrinking
        # the horizon must drop the ones that no longer fit, not fail.
        spec = canned_spec("merge_split", ticks=10)
        assert spec.lifecycle["merge_at"] == (8,)
        assert spec.lifecycle["split_at"] == ()


class TestScheduleDeterminism:
    @pytest.mark.parametrize("name", sorted(CANNED_SPECS))
    def test_independent_generators_agree(self, name):
        spec = canned_spec(name, ticks=10)
        first = WorkloadGenerator(spec).schedule()
        second = WorkloadGenerator(spec).schedule()
        assert first.schedule_hash() == second.schedule_hash()
        assert [e.to_document() for e in first.events] \
            == [e.to_document() for e in second.events]

    @pytest.mark.parametrize("name", sorted(GOLDEN_HASHES))
    def test_golden_schedule_hashes(self, name):
        plan = WorkloadGenerator(canned_spec(name, ticks=10)).schedule()
        assert plan.schedule_hash() == GOLDEN_HASHES[name]

    def test_seed_changes_the_schedule(self):
        base = canned_spec("flash_crowd", ticks=10)
        reseeded = canned_spec("flash_crowd", ticks=10, seed=99)
        assert WorkloadGenerator(base).schedule().schedule_hash() \
            != WorkloadGenerator(reseeded).schedule().schedule_hash()

    @pytest.mark.parametrize("name", sorted(CANNED_SPECS))
    def test_events_are_self_contained_and_consistent(self, name):
        """Replaying the mirrors from event payloads alone stays sane.

        Every event carries full rosters, so a mirror built purely from
        payloads must keep rooms disjoint, inside the universe, with
        their target always on the roster — the invariants
        ``run_plan`` relies on without re-checking.
        """
        spec = canned_spec(name, ticks=10)
        plan = WorkloadGenerator(spec).schedule()
        rooms: dict[str, dict] = {}
        for event in plan.events:
            payload = event.payload
            if event.kind == "open":
                rooms[payload["room"]] = {
                    "users": list(payload["users"]),
                    "target": payload["target"]}
            elif event.kind == "close":
                del rooms[payload["room"]]
            elif event.kind in ("join", "leave"):
                rooms[payload["room"]]["users"] = list(payload["users"])
            elif event.kind == "handoff":
                assert payload["user"] \
                    in rooms[payload["room"]]["users"]
            elif event.kind == "merge":
                primary = rooms[payload["primary"]]
                secondary = rooms.pop(payload["secondary"])
                assert payload["users"] \
                    == primary["users"] + secondary["users"]
                primary["users"] = list(payload["users"])
            elif event.kind == "split":
                room = rooms[payload["room"]]
                assert sorted(payload["retained"]
                              + payload["departed"]) \
                    == sorted(room["users"])
                assert room["target"] in payload["retained"]
                room["users"] = list(payload["retained"])
                rooms[payload["spawn"]] = {
                    "users": list(payload["departed"]),
                    "target": payload["spawn_target"]}
            else:
                pytest.fail(f"unknown event kind {event.kind!r}")
            everyone = [u for room in rooms.values()
                        for u in room["users"]]
            assert len(everyone) == len(set(everyone))
            assert all(0 <= u < spec.universe_users for u in everyone)
            for room in rooms.values():
                assert room["target"] in room["users"]
                assert len(room["users"]) >= 2


def _run_on_engine(plan, *, workers=None, max_queue=256,
                   pump_interval=1):
    with SessionEngine(max_batch=8, max_queue=max_queue,
                       workers=workers) as engine:
        driver = ReplayDriver(engine, pump_interval=pump_interval)
        return driver.run_plan(plan, NearestRecommender())


def _accounting(outcome):
    """The deployment-invariant view of a plan run: every admission
    decision plus every episode's deterministic outputs."""
    tickets = {sid: [(t.t, t.status) for t in tickets]
               for sid, tickets in outcome.tickets.items()}
    return tickets, {sid: outcome.results[sid]
                     for sid in sorted(outcome.results)}


class TestExecutionInvariance:
    def test_plan_runs_merges_and_splits_end_to_end(self):
        plan = WorkloadGenerator(
            canned_spec("merge_split", ticks=14)).schedule()
        kinds = {event.kind for event in plan.events}
        assert {"merge", "split"} <= kinds
        outcome = _run_on_engine(plan)
        spawned = [sid for sid in outcome.results if "+s" in sid]
        assert spawned, "split never spawned a session"
        for result in outcome.results.values():
            assert result.recommendations.ndim == 2

    def test_worker_pool_width_does_not_change_outcomes(self):
        """Same plan, 1-thread vs 4-thread tail pool: bit-identical.

        Admission control is deterministic in submit order and the
        batched step is order-independent, so the worker pool is pure
        mechanism — if outcomes drift with pool width, a data race
        crept into the batch path.
        """
        plan = WorkloadGenerator(
            canned_spec("flash_crowd", ticks=14)).schedule()
        serial = _run_on_engine(plan, workers=None)
        threaded = _run_on_engine(plan, workers=4)
        serial_tickets, serial_results = _accounting(serial)
        threaded_tickets, threaded_results = _accounting(threaded)
        assert serial_tickets == threaded_tickets
        assert sorted(serial_results) == sorted(threaded_results)
        for sid in serial_results:
            assert_episodes_identical(serial_results[sid],
                                      threaded_results[sid])

    def test_overload_shed_accounting_is_schedule_determined(self):
        """Flash-crowd overload sheds identically across pool widths.

        ``pump_interval=4`` lets the burst stack the queue past
        ``max_queue`` so real shedding happens; the shed/degrade
        pattern must still be a pure function of the schedule.
        """
        plan = WorkloadGenerator(
            canned_spec("flash_crowd", ticks=14)).schedule()
        runs = [_run_on_engine(plan, workers=w, max_queue=12,
                               pump_interval=4) for w in (None, 3)]
        accounted = [_accounting(run)[0] for run in runs]
        assert accounted[0] == accounted[1]
        statuses = [status for tickets in accounted[0].values()
                    for _, status in tickets]
        assert "shed" in statuses, \
            "overload scenario never shed — queue bound too loose"

    @fork_available
    def test_engine_and_fleet_run_identical_plans(self):
        """One plan, in-process engine vs 2-shard fleet: same episodes.

        Sheds differ by design (the fleet divides its budget per
        shard), so this runs unloaded and compares the per-session
        episode results — the strongest cross-deployment guarantee the
        serving layer makes.
        """
        plan = WorkloadGenerator(
            canned_spec("merge_split", ticks=14)).schedule()
        engine_outcome = _run_on_engine(plan)
        with Fleet(2, max_batch=8, max_queue=256) as fleet:
            fleet_outcome = ReplayDriver(fleet).run_plan(
                plan, NearestRecommender())
        assert sorted(engine_outcome.results) \
            == sorted(fleet_outcome.results)
        for sid in engine_outcome.results:
            assert_episodes_identical(engine_outcome.results[sid],
                                      fleet_outcome.results[sid])

    @fork_available
    def test_fleet_flash_crowd_accounting_matches_across_workers(self):
        """Seeded fleet stress: per-shard worker pools don't leak into
        admission — two fleets differing only in ``workers`` hand out
        identical ticket streams and final episodes under burst load."""
        plan = WorkloadGenerator(
            canned_spec("flash_crowd", ticks=14)).schedule()
        outcomes = []
        for workers in (None, 3):
            with Fleet(2, max_batch=8, max_queue=32,
                       workers=workers) as fleet:
                outcomes.append(ReplayDriver(fleet).run_plan(
                    plan, NearestRecommender()))
        lean_tickets, lean_results = _accounting(outcomes[0])
        wide_tickets, wide_results = _accounting(outcomes[1])
        assert lean_tickets == wide_tickets
        for sid in lean_results:
            assert_episodes_identical(lean_results[sid],
                                      wide_results[sid])


class _MonitoredSampler(TelemetrySampler):
    """A sampler that also evaluates an SLO monitor at every sample —
    the 'live' half of the live-vs-replay equivalence test."""

    def __init__(self, source, monitor):
        super().__init__(source)
        self.monitor = monitor

    def sample(self, now=None):
        raw = super().sample(now=now)
        marker = len(self.monitor.events.records)
        self.monitor.evaluate(self.shards, now=now)
        for record in self.monitor.events.records[marker:]:
            record["at"] = float(now)
        return raw


def _transitions(records):
    return [(record["type"], record["rule"], record["shard"],
             record["at"]) for record in records
            if record["type"] in ("slo.breach", "slo.recover")]


class TestSloReplayEquivalence:
    def test_live_monitor_matches_recorded_replay(self):
        """Breach/recover transitions agree timestamp-for-timestamp.

        A monitor evaluated live at every tick of a merge/split run
        and :func:`evaluate_recorded` replaying the same telemetry
        afterwards must see identical transition streams — the
        property that makes post-hoc SLO verdicts (benchmarks, CI)
        trustworthy stand-ins for live alerting.  The rule trips on
        room count, so merges (recover) and splits (breach) both fire.
        """
        rules = ["last(serving.open_sessions) < 3 over 2s"]
        plan = WorkloadGenerator(
            canned_spec("merge_split", ticks=14)).schedule()
        live = SloMonitor(rules)
        with SessionEngine(max_batch=8, max_queue=256) as engine:
            sampler = _MonitoredSampler(engine, live)
            ReplayDriver(engine).run_plan(plan, NearestRecommender(),
                                          sampler=sampler)
        report = evaluate_recorded(rules, sampler.shards,
                                   scenario="merge_split")
        assert report.scenario == "merge_split"
        live_transitions = _transitions(live.events.records)
        replayed = _transitions(report.events)
        assert live_transitions == replayed
        kinds = {kind for kind, *_ in live_transitions}
        assert kinds == {"slo.breach", "slo.recover"}, \
            "scenario must exercise both transition directions"

    def test_recorded_replay_can_be_scoped_to_a_scenario_window(self):
        """``start``/``end`` scope a longer recording to one scenario's
        ticks; transitions outside the window don't fire."""
        rules = ["last(serving.open_sessions) < 3 over 2s"]
        plan = WorkloadGenerator(
            canned_spec("merge_split", ticks=14)).schedule()
        with SessionEngine(max_batch=8, max_queue=256) as engine:
            sampler = TelemetrySampler(engine)
            ReplayDriver(engine).run_plan(plan, NearestRecommender(),
                                          sampler=sampler)
        full = evaluate_recorded(rules, sampler.shards)
        tail = evaluate_recorded(rules, sampler.shards, start=9.0,
                                 end=13.0, scenario="tail")
        assert tail.timestamps < full.timestamps
        assert all(9.0 <= record["at"] <= 13.0
                   for record in tail.events)
