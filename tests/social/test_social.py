"""Tests for the social substrate: graphs, embeddings, utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.social import (
    PreferenceModel,
    SocialGraph,
    SocialPresenceModel,
    community_powerlaw_graph,
    cosine_similarity_matrix,
    spectral_embedding,
    watts_strogatz_graph,
)


def small_graph(seed=0, n=40):
    return community_powerlaw_graph(
        num_users=n, num_communities=4, mean_degree=6.0, homophily=0.8,
        rng=np.random.default_rng(seed))


class TestSocialGraph:
    def test_validates_symmetry(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = True  # not symmetric
        with pytest.raises(ValueError):
            SocialGraph(adjacency, np.zeros(3))

    def test_rejects_self_loops(self):
        adjacency = np.eye(3, dtype=bool)
        with pytest.raises(ValueError):
            SocialGraph(adjacency, np.zeros(3))

    def test_rejects_bad_community_shape(self):
        with pytest.raises(ValueError):
            SocialGraph(np.zeros((3, 3), dtype=bool), np.zeros(4))

    def test_default_tie_strengths_follow_adjacency(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        graph = SocialGraph(adjacency, np.zeros(3))
        assert graph.tie_strengths[0, 1] == 1.0
        assert graph.tie_strengths[0, 2] == 0.0

    def test_degrees_and_edges(self):
        graph = small_graph()
        assert graph.degrees().sum() == 2 * graph.num_edges

    def test_friends_of(self):
        graph = small_graph()
        for friend in graph.friends_of(0):
            assert graph.adjacency[0, friend]

    def test_common_neighbors(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        for a, b in [(0, 2), (1, 2), (0, 3), (1, 3)]:
            adjacency[a, b] = adjacency[b, a] = True
        graph = SocialGraph(adjacency, np.zeros(4))
        np.testing.assert_array_equal(graph.common_neighbors(0, 1), [2, 3])

    def test_adamic_adar_zero_diagonal_symmetric(self):
        graph = small_graph()
        scores = graph.adamic_adar()
        np.testing.assert_allclose(np.diag(scores), 0.0)
        np.testing.assert_allclose(scores, scores.T)

    def test_to_networkx(self):
        graph = small_graph(n=10)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 10
        assert nx_graph.number_of_edges() == graph.num_edges


class TestGenerators:
    def test_powerlaw_mean_degree_close_to_target(self):
        graph = community_powerlaw_graph(
            200, 5, mean_degree=8.0, homophily=0.8,
            rng=np.random.default_rng(1))
        assert graph.degrees().mean() == pytest.approx(8.0, rel=0.25)

    def test_homophily_concentrates_edges(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        homophilous = community_powerlaw_graph(150, 3, 8.0, 0.95, rng_a)
        mixed = community_powerlaw_graph(150, 3, 8.0, 0.5, rng_b)

        def internal_fraction(g):
            rows, cols = np.nonzero(np.triu(g.adjacency, 1))
            same = g.communities[rows] == g.communities[cols]
            return same.mean()

        assert internal_fraction(homophilous) > internal_fraction(mixed)

    def test_powerlaw_validates_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            community_powerlaw_graph(1, 2, 4.0, 0.8, rng)
        with pytest.raises(ValueError):
            community_powerlaw_graph(10, 2, 4.0, 1.5, rng)
        with pytest.raises(ValueError):
            community_powerlaw_graph(10, 0, 4.0, 0.8, rng)

    def test_tie_strengths_positive_on_edges(self):
        graph = small_graph()
        assert (graph.tie_strengths[graph.adjacency] > 0).all()
        assert (graph.tie_strengths[~graph.adjacency] == 0).all()

    def test_watts_strogatz_ring_structure(self):
        graph = watts_strogatz_graph(20, neighbors=4, rewire=0.0,
                                     rng=np.random.default_rng(3))
        # No rewiring => every node has exactly 4 neighbours.
        np.testing.assert_array_equal(graph.degrees(), 4)

    def test_watts_strogatz_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, neighbors=3, rewire=0.1, rng=rng)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, neighbors=4, rewire=1.5, rng=rng)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(10, 60), st.integers(0, 1_000))
    def test_powerlaw_always_valid_graph(self, n, seed):
        graph = community_powerlaw_graph(
            n, 3, 4.0, 0.8, np.random.default_rng(seed))
        assert graph.num_users == n
        np.testing.assert_array_equal(graph.adjacency, graph.adjacency.T)
        assert not graph.adjacency.diagonal().any()


class TestEmbeddings:
    def test_shape_and_normalisation(self):
        graph = small_graph()
        emb = spectral_embedding(graph, dim=8)
        assert emb.shape == (40, 8)
        norms = np.linalg.norm(emb, axis=1)
        connected = graph.degrees() > 0
        np.testing.assert_allclose(norms[connected], 1.0, atol=1e-9)

    def test_isolated_nodes_zero(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        graph = SocialGraph(adjacency, np.zeros(4))
        emb = spectral_embedding(graph, dim=2)
        np.testing.assert_allclose(emb[2], 0.0)
        np.testing.assert_allclose(emb[3], 0.0)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            spectral_embedding(small_graph(), dim=0)

    def test_friends_closer_than_strangers(self):
        graph = community_powerlaw_graph(
            80, 2, 6.0, 0.95, np.random.default_rng(5))
        emb = spectral_embedding(graph, dim=8)
        sim = cosine_similarity_matrix(emb)
        same = graph.communities[:, None] == graph.communities[None, :]
        np.fill_diagonal(same, False)
        cross = ~same
        np.fill_diagonal(cross, False)
        assert sim[same].mean() > sim[cross].mean()

    def test_cosine_similarity_range(self):
        rng = np.random.default_rng(0)
        sim = cosine_similarity_matrix(rng.standard_normal((10, 4)))
        assert (sim >= 0).all()
        assert (sim <= 1).all()
        np.testing.assert_allclose(np.diag(sim), 0.0)


class TestPreferenceModel:
    def test_output_range_and_diagonal(self):
        p = PreferenceModel().generate(small_graph(), np.random.default_rng(0))
        assert (p >= 0).all()
        assert (p <= 1).all()
        np.testing.assert_allclose(np.diag(p), 0.0)

    def test_rejects_degenerate_weights(self):
        with pytest.raises(ValueError):
            PreferenceModel(interest_weight=0, structure_weight=0,
                            popularity_weight=0)
        with pytest.raises(ValueError):
            PreferenceModel(interest_weight=-1)

    def test_deterministic_under_seed(self):
        graph = small_graph()
        a = PreferenceModel().generate(graph, np.random.default_rng(3))
        b = PreferenceModel().generate(graph, np.random.default_rng(3))
        np.testing.assert_allclose(a, b)

    def test_popularity_creates_globally_attractive_users(self):
        graph = small_graph(n=60)
        p = PreferenceModel(interest_weight=0.0, structure_weight=0.0,
                            popularity_weight=1.0).generate(
            graph, np.random.default_rng(4))
        # Column means should be highly dispersed (idols vs unknowns).
        column_means = p.mean(axis=0)
        assert column_means.max() - column_means.min() > 0.5


class TestSocialPresenceModel:
    def test_output_range(self):
        s = SocialPresenceModel().generate(small_graph())
        assert (s >= 0).all()
        assert (s <= 1).all()
        np.testing.assert_allclose(np.diag(s), 0.0)

    def test_friends_score_higher_than_strangers(self):
        graph = small_graph(n=80)
        s = SocialPresenceModel().generate(graph)
        friends = graph.adjacency
        strangers = ~graph.adjacency
        np.fill_diagonal(strangers, False)
        assert s[friends].mean() > s[strangers].mean()

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            SocialPresenceModel(friend_weight=0, proximity_weight=0,
                                community_weight=0)

    def test_deterministic(self):
        graph = small_graph()
        np.testing.assert_allclose(
            SocialPresenceModel().generate(graph),
            SocialPresenceModel().generate(graph))
