"""Tests for the simulated user study."""

import numpy as np
import pytest

from repro.models import NearestRecommender, RandomRecommender, \
    RenderAllRecommender
from repro.study import (
    OCCUPATIONS,
    Participant,
    StudyResult,
    UserStudy,
    generate_participants,
    likert_response,
    make_study_room,
    normalise_scores,
)


def cohort(count=12, seed=0):
    return generate_participants(count, np.random.default_rng(seed))


class TestParticipants:
    def test_cohort_size_and_composition(self):
        participants = generate_participants(48, np.random.default_rng(0))
        assert len(participants) == 48
        males = sum(p.gender == "male" for p in participants)
        assert males == 25  # paper: 25 male / 23 female

    def test_beta_range(self):
        for p in cohort(48):
            assert 0.05 <= p.beta <= 0.95

    def test_mr_fraction(self):
        participants = generate_participants(
            40, np.random.default_rng(1), mr_fraction=0.25)
        assert sum(p.uses_mr for p in participants) == 10

    def test_occupations_from_paper_list(self):
        assert all(p.occupation in OCCUPATIONS for p in cohort(30))

    def test_validates_count(self):
        with pytest.raises(ValueError):
            generate_participants(0)

    def test_deterministic_under_seed(self):
        a = cohort(10, seed=3)
        b = cohort(10, seed=3)
        assert [p.beta for p in a] == [p.beta for p in b]


class TestLikert:
    def participant(self, noise=0.0, bias=0.0):
        return Participant(id=0, gender="female", occupation="artist",
                           beta=0.5, uses_mr=False, response_bias=bias,
                           response_noise=noise)

    def test_normalise_scores_range(self):
        out = normalise_scores(np.array([1.0, 3.0, 5.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_normalise_constant_gives_half(self):
        np.testing.assert_allclose(normalise_scores(np.ones(4)), 0.5)

    def test_likert_bounds(self):
        rng = np.random.default_rng(0)
        p = self.participant(noise=0.5)
        scores = [likert_response(u, p, rng)
                  for u in np.linspace(-1, 2, 50)]
        assert all(1 <= s <= 5 for s in scores)

    def test_noiseless_extremes(self):
        rng = np.random.default_rng(0)
        p = self.participant()
        assert likert_response(1.0, p, rng) == 5
        assert likert_response(0.0, p, rng) == 1

    def test_monotone_in_utility(self):
        rng = np.random.default_rng(0)
        p = self.participant()
        scores = [likert_response(u, p, rng) for u in (0.0, 0.5, 1.0)]
        assert scores == sorted(scores)

    def test_bias_shifts_response(self):
        rng = np.random.default_rng(0)
        up = self.participant(bias=0.2)
        down = self.participant(bias=-0.2)
        assert likert_response(0.5, up, rng) >= likert_response(
            0.5, down, rng)


class TestStudyRoom:
    def test_interfaces_match_cohort(self):
        participants = cohort(16)
        room = make_study_room(participants, seed=0, num_steps=4)
        expected = np.array([p.uses_mr for p in participants])
        np.testing.assert_array_equal(room.interfaces_mr, expected)

    def test_room_named_and_sized(self):
        participants = cohort(16)
        room = make_study_room(participants, seed=0, num_steps=4)
        assert room.name == "user-study"
        assert room.num_users == 16


class TestUserStudy:
    @pytest.fixture(scope="class")
    def result(self):
        study = UserStudy(participants=cohort(10), seed=0, num_steps=8)
        methods = {
            "Nearest": NearestRecommender(),
            "Random": RandomRecommender(seed=0),
            "Original": RenderAllRecommender(),
        }
        return study.run(methods, fit=False)

    def test_outcomes_for_all_methods(self, result):
        assert set(result.outcomes) == {"Nearest", "Random", "Original"}

    def test_per_participant_arrays(self, result):
        for outcome in result.outcomes.values():
            assert outcome.after_utilities.shape == (10,)
            assert outcome.likert_overall.shape == (10,)
            assert ((outcome.likert_overall >= 1)
                    & (outcome.likert_overall <= 5)).all()

    def test_figure4_panels(self, result):
        panels = result.figure4()
        assert set(panels) == {"overall", "preference", "presence"}
        for rows in panels.values():
            assert set(rows) == set(result.outcomes)
            for values in rows.values():
                assert "utility" in values
                assert "likert" in values

    def test_correlations_structure(self, result):
        correlations = result.correlations()
        assert set(correlations) == {"preference", "social_presence",
                                     "after_utility"}
        for corr in correlations.values():
            assert -1.0 <= corr["pearson"] <= 1.0
            assert -1.0 <= corr["spearman"] <= 1.0

    def test_correlations_positive(self, result):
        """Likert is generated from utility: correlation must be high."""
        assert result.correlations()["after_utility"]["pearson"] > 0.3

    def test_adaptive_preference_rate_bounds(self, result):
        rate = result.adaptive_preference_rate()
        assert 0.0 <= rate <= 1.0

    def test_adaptive_rate_requires_original(self, result):
        with pytest.raises(KeyError):
            result.adaptive_preference_rate(original="Nope")

    def test_p_value_range(self, result):
        p = result.p_value_against("Nearest", "Random")
        assert 0.0 <= p <= 1.0

    def test_mean_likert_scales(self, result):
        outcome = result.outcomes["Nearest"]
        for scale in ("overall", "preference", "presence"):
            assert 1.0 <= outcome.mean_likert(scale) <= 5.0

    def test_problems_use_participant_betas(self):
        participants = cohort(5)
        study = UserStudy(participants=participants, seed=0, num_steps=4)
        problems = study.problems()
        assert [p.beta for p in problems] == \
            [p.beta for p in participants]
