"""Documentation-coverage guard: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name for _finder, name, _pkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_api_documented(module_name):
    """Everything exported via ``__all__`` must have a docstring."""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if inspect.ismodule(obj):
            continue
        if isinstance(obj, (int, float, str, dict, tuple, frozenset, list)):
            continue  # constants documented in the module docstring
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, \
        f"{module_name} exports undocumented items: {undocumented}"


@pytest.mark.parametrize("module_name", [
    "repro.core", "repro.models", "repro.geometry", "repro.datasets",
    "repro.nn", "repro.nn.tape", "repro.mwis", "repro.crowd",
    "repro.social", "repro.study",
    "repro.bench", "repro.viz", "repro.training", "repro.training.engine",
    "repro.training.batched", "repro.training.storage",
    "repro.runtime", "repro.obs",
    "repro.serving", "repro.serving.session", "repro.serving.engine",
    "repro.serving.replay", "repro.serving.workload",
    "repro.buffers", "repro.buffers.arena",
    "repro.buffers.backend", "repro.buffers.heap", "repro.buffers.shm",
])
def test_public_methods_documented(module_name):
    """Public methods of exported classes must have docstrings."""
    module = importlib.import_module(module_name)
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj):
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(method) or isinstance(
                    getattr(obj, method_name, None), property)):
                continue
            target = method.fget if isinstance(method, property) else method
            if not inspect.getdoc(target):
                missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: undocumented methods {missing}"
