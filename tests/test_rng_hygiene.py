"""Every RNG draw in tests, benches and library code must be seeded.

The audit that introduced this guard converted the suites to the
``np.random.default_rng(seed)`` idiom; this test keeps them there.  See
``tests/conftest.py`` for what counts as an offender and why.
"""

import ast
import textwrap
from pathlib import Path

from .conftest import find_unseeded_rng, _offending_call

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_unseeded_rng_in_tests():
    offenders = find_unseeded_rng(REPO_ROOT / "tests")
    assert not offenders, "unseeded RNG calls:\n" + "\n".join(offenders)


def test_no_unseeded_rng_in_benchmarks():
    offenders = find_unseeded_rng(REPO_ROOT / "benchmarks")
    assert not offenders, "unseeded RNG calls:\n" + "\n".join(offenders)


def test_no_unseeded_rng_in_library():
    offenders = find_unseeded_rng(REPO_ROOT / "src")
    assert not offenders, "unseeded RNG calls:\n" + "\n".join(offenders)


def _reasons(source: str) -> list[str]:
    tree = ast.parse(textwrap.dedent(source))
    return [reason for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and (reason := _offending_call(node)) is not None]


def test_scanner_flags_legacy_global_calls():
    assert _reasons("import numpy as np\nx = np.random.rand(3)\n")
    assert _reasons("import numpy\nnumpy.random.seed(0)\n")
    assert _reasons("import numpy as np\nnp.random.shuffle(items)\n")


def test_scanner_flags_unseeded_default_rng():
    assert _reasons("import numpy as np\nrng = np.random.default_rng()\n")
    assert _reasons("from numpy.random import default_rng\n"
                    "rng = default_rng()\n")


def test_scanner_accepts_seeded_idioms():
    assert not _reasons("import numpy as np\n"
                        "rng = np.random.default_rng(0)\n"
                        "x = rng.random(3)\n")
    assert not _reasons("import numpy as np\n"
                        "rng = np.random.default_rng(seed=7)\n")
    # Generator *method* calls named like legacy functions are fine.
    assert not _reasons("x = rng.choice(10, size=3)\n")
