"""Batched multi-room BPTT: grouping, parity and kill-and-resume.

The stacked path changes *scheduling* (one optimiser step per chunk per
window) but nothing numeric at lr=0, and replay mode must be a pure
performance knob — byte-identical to the eager batched path.
"""

import numpy as np
import pytest

from repro.core import AfterProblem
from repro.datasets import RoomConfig, generate_timik_room
from repro.models import DCRNNRecommender, POSHGNN, TGCNRecommender
from repro.models.poshgnn.trainer import POSHGNNTrainer
from repro.training import TrainableSpec, TrainingEngine


def _assert_states_equal(left: dict, right: dict):
    assert set(left) == set(right)
    for name in left:
        np.testing.assert_array_equal(left[name], right[name], err_msg=name)


# ----------------------------------------------------------------------
# Chunk grouping
# ----------------------------------------------------------------------
class _Sized:
    def __init__(self, num_users, horizon):
        self.num_users = num_users
        self.horizon = horizon


class _NullSpec(TrainableSpec):
    supports_batch = True


def _chunks(problems, order, batch_rooms):
    engine = TrainingEngine(_NullSpec(), epochs=1, batch_rooms=batch_rooms)
    return engine._batch_chunks(problems, order)


class TestBatchChunks:
    def test_stable_partition_in_first_occurrence_order(self):
        problems = [_Sized(12, 5), _Sized(8, 5), _Sized(12, 5),
                    _Sized(8, 5), _Sized(12, 5)]
        chunks = _chunks(problems, [0, 1, 2, 3, 4], batch_rooms=4)
        assert chunks == [[0, 2, 4], [1, 3]]

    def test_respects_shuffled_order_within_groups(self):
        problems = [_Sized(12, 5)] * 4
        assert _chunks(problems, [2, 0, 3, 1], batch_rooms=4) == [[2, 0, 3, 1]]

    def test_chunks_bounded_by_batch_rooms(self):
        problems = [_Sized(12, 5)] * 5
        chunks = _chunks(problems, [0, 1, 2, 3, 4], batch_rooms=2)
        assert chunks == [[0, 1], [2, 3], [4]]

    def test_horizon_splits_groups(self):
        problems = [_Sized(12, 5), _Sized(12, 7), _Sized(12, 5)]
        assert _chunks(problems, [0, 1, 2], batch_rooms=4) == [[0, 2], [1]]

    def test_batch_rooms_of_one_stays_serial(self):
        engine = TrainingEngine(_NullSpec(), epochs=1, batch_rooms=1)
        assert not engine._use_batch()

    def test_engine_rejects_nonpositive_batch_rooms(self):
        with pytest.raises(ValueError, match="batch_rooms"):
            TrainingEngine(_NullSpec(), epochs=1, batch_rooms=0)


# ----------------------------------------------------------------------
# POSHGNN parity
# ----------------------------------------------------------------------
class TestPOSHGNNBatchedParity:
    def test_lr0_epoch_losses_match_serial(self, problems):
        """At lr=0 the stacked path computes the same losses as the
        serial loop up to float summation reordering (docs/TRAINING.md:
        minibatching changes grouping, not the math)."""
        serial = POSHGNNTrainer(POSHGNN(seed=0), lr=0.0, epochs=2).train(
            problems)
        batched = POSHGNNTrainer(POSHGNN(seed=0), lr=0.0, epochs=2,
                                 batch_rooms=2).train(problems)
        np.testing.assert_allclose(serial["loss"], batched["loss"],
                                   rtol=1e-12)

    @pytest.mark.parametrize("shuffle", [False, True])
    def test_replay_is_byte_identical_to_eager_batched(self, problems,
                                                       shuffle):
        results = {}
        models = {}
        for replay in (False, True):
            model = POSHGNN(seed=0)
            trainer = POSHGNNTrainer(model, epochs=3, batch_rooms=2,
                                     shuffle=shuffle, seed=3, replay=replay)
            results[replay] = trainer.train(problems)
            models[replay] = model
        assert results[True]["loss"] == results[False]["loss"]
        assert results[True]["best_loss"] == results[False]["best_loss"]
        _assert_states_equal(models[True].state_dict(),
                             models[False].state_dict())

    def test_replay_path_actually_replays(self, problems):
        model = POSHGNN(seed=0)
        trainer = POSHGNNTrainer(model, epochs=3, batch_rooms=2)
        trainer.train(problems)
        stats = trainer._runner.stats
        assert stats["records"] >= 1
        assert stats["replays"] >= 1
        assert not stats["volatile"]
        assert stats["eager_steps"] == 0

    def test_mixed_room_sizes_train_in_separate_chunks(self, problems):
        other_room = generate_timik_room(
            RoomConfig(num_users=8, num_steps=6), seed=5)
        mixed = list(problems) + [AfterProblem(other_room, 0)]
        model = POSHGNN(seed=0)
        result = POSHGNNTrainer(model, epochs=2, batch_rooms=4).train(mixed)
        assert len(result["loss"]) == 2
        assert all(np.isfinite(value) for value in result["loss"])


# ----------------------------------------------------------------------
# Kill-and-resume on the batched path
# ----------------------------------------------------------------------
class TestBatchedResume:
    @pytest.mark.parametrize("shuffle", [False, True])
    def test_interrupt_resume_bit_identical(self, problems, tmp_path,
                                            shuffle):
        kwargs = dict(epochs=6, batch_rooms=2, shuffle=shuffle, seed=3)
        model_a = POSHGNN(seed=0)
        result_a = POSHGNNTrainer(model_a, **kwargs).train(problems)

        directory = tmp_path / "ckpts"
        model_b = POSHGNN(seed=0)
        POSHGNNTrainer(model_b, epochs=3, batch_rooms=2, shuffle=shuffle,
                       seed=3, checkpoint_dir=str(directory)).train(problems)

        model_c = POSHGNN(seed=0)
        result_c = POSHGNNTrainer(model_c, **kwargs).train(
            problems, resume_from=str(directory))
        assert result_a["loss"] == result_c["loss"]
        assert result_a["best_loss"] == result_c["best_loss"]
        _assert_states_equal(model_a.state_dict(), model_c.state_dict())


# ----------------------------------------------------------------------
# Recurrent baselines on the batched path
# ----------------------------------------------------------------------
class TestRecurrentBatched:
    @pytest.mark.parametrize("cls", [DCRNNRecommender, TGCNRecommender])
    def test_replay_fit_matches_eager_batched_fit(self, cls, problems):
        results = {}
        states = {}
        for replay in (False, True):
            rec = cls(seed=0)
            results[replay] = rec.fit(problems, epochs=3, restarts=1,
                                      batch_rooms=2, replay=replay)
            states[replay] = {name: parameter.data.copy()
                              for name, parameter in rec.named_parameters()}
        assert results[True]["loss"] == results[False]["loss"]
        _assert_states_equal(states[True], states[False])

    @pytest.mark.parametrize("cls", [DCRNNRecommender, TGCNRecommender])
    def test_lr0_fit_matches_serial(self, cls, problems):
        serial = cls(seed=0).fit(problems, epochs=2, restarts=1, lr=0.0)
        batched = cls(seed=0).fit(problems, epochs=2, restarts=1, lr=0.0,
                                  batch_rooms=2)
        np.testing.assert_allclose(serial["loss"], batched["loss"],
                                   rtol=1e-12)

    def test_dcrnn_batched_kill_and_resume(self, problems, tmp_path):
        """The ISSUE smoke: kill a batched DCRNN fit mid-run, resume,
        land bit-identical with the uninterrupted batched run."""
        kwargs = dict(epochs=4, restarts=1, batch_rooms=2, save_every=1)
        gold = DCRNNRecommender(seed=0)
        result_a = gold.fit(problems, run_dir=str(tmp_path / "gold"),
                            **kwargs)

        class _Kill(Exception):
            pass

        killed = DCRNNRecommender(seed=0)
        seen = []

        def kill(engine, epoch, history):
            seen.append(epoch)
            if len(seen) == 2:
                raise _Kill

        run_dir = str(tmp_path / "run")
        with pytest.raises(_Kill):
            killed.fit(problems, run_dir=run_dir, on_epoch_end=kill,
                       **kwargs)

        resumed = DCRNNRecommender(seed=0)
        result_c = resumed.fit(problems, run_dir=run_dir, resume_from=run_dir,
                               **kwargs)
        assert result_a["loss"] == result_c["loss"]
        assert result_a["train_utility"] == result_c["train_utility"]
        _assert_states_equal(
            {name: p.data for name, p in gold.named_parameters()},
            {name: p.data for name, p in resumed.named_parameters()})
