"""Checkpoint format: round-trip fidelity, versioning, atomicity, retention."""

import json
import os

import numpy as np
import pytest

from repro.nn import MLP, Adam
from repro.training import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    RunManifest,
    TrainerCheckpoint,
)


def _small_checkpoint(epoch=3, with_best=True):
    rng = np.random.default_rng(0)
    model = MLP([3, 4, 2], rng)
    optimizer = Adam(model.parameters(), lr=0.02)
    for param in model.parameters():
        param.grad = rng.normal(size=param.data.shape)
    optimizer.step()
    return TrainerCheckpoint(
        model_state=model.state_dict(),
        optimizer_state=optimizer.state_dict(),
        epoch=epoch,
        history=[3.0, 2.5, 2.25],
        best_loss=2.25,
        best_state=model.state_dict() if with_best else None,
        alpha=0.04,
        rng_state=np.random.default_rng(7).bit_generator.state,
        guard_events=[{"type": "nonfinite_loss", "epoch": 1,
                       "retry": 1}],
    )


class TestTrainerCheckpoint:
    def test_round_trip_bit_identical(self, tmp_path):
        checkpoint = _small_checkpoint()
        path = checkpoint.save(tmp_path / "ckpt")
        loaded = TrainerCheckpoint.load(path)

        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.epoch == checkpoint.epoch
        assert loaded.history == checkpoint.history
        assert loaded.best_loss == checkpoint.best_loss
        assert loaded.alpha == checkpoint.alpha
        assert loaded.rng_state == checkpoint.rng_state
        assert loaded.guard_events == checkpoint.guard_events
        for name, value in checkpoint.model_state.items():
            assert np.array_equal(loaded.model_state[name], value)
        for name, value in checkpoint.best_state.items():
            assert np.array_equal(loaded.best_state[name], value)

    def test_optimizer_state_round_trip_adam(self, tmp_path):
        checkpoint = _small_checkpoint()
        loaded = TrainerCheckpoint.load(checkpoint.save(tmp_path / "c.npz"))
        restored = loaded.optimizer_state
        original = checkpoint.optimizer_state
        assert restored["hyper"]["_step_count"] == 1
        assert restored["hyper"]["lr"] == original["hyper"]["lr"]
        for key in ("m", "v"):
            assert len(restored["slots"][key]) == len(original["slots"][key])
            for a, b in zip(restored["slots"][key], original["slots"][key]):
                assert np.array_equal(a, b)

    def test_no_best_state(self, tmp_path):
        checkpoint = _small_checkpoint(with_best=False)
        loaded = TrainerCheckpoint.load(checkpoint.save(tmp_path / "c"))
        assert loaded.best_state is None

    def test_suffix_optional_on_load(self, tmp_path):
        checkpoint = _small_checkpoint()
        checkpoint.save(tmp_path / "ckpt")
        loaded = TrainerCheckpoint.load(tmp_path / "ckpt")
        assert loaded.epoch == checkpoint.epoch

    def test_newer_version_rejected(self, tmp_path):
        checkpoint = _small_checkpoint()
        checkpoint.version = CHECKPOINT_VERSION + 1
        path = checkpoint.save(tmp_path / "future")
        with pytest.raises(ValueError, match="version"):
            TrainerCheckpoint.load(path)

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, weights=np.ones(3))
        with pytest.raises(ValueError, match="meta"):
            TrainerCheckpoint.load(path)

    def test_atomic_write_leaves_no_temporaries(self, tmp_path):
        checkpoint = _small_checkpoint()
        checkpoint.save(tmp_path / "a")
        checkpoint.save(tmp_path / "a")  # overwrite in place
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.startswith(".tmp-")]
        assert leftovers == []
        assert sorted(os.listdir(tmp_path)) == ["a.npz"]


class TestCheckpointManager:
    def _save_epochs(self, manager, epochs, best_at=()):
        for epoch in epochs:
            checkpoint = _small_checkpoint(epoch=epoch)
            manager.save(checkpoint, is_best=epoch in best_at)

    def test_retention_keeps_last_k_plus_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        self._save_epochs(manager, [1, 2, 3, 4, 5], best_at=(2,))
        kept = sorted(os.listdir(tmp_path))
        assert kept == ["best.npz", "ckpt-00004.npz", "ckpt-00005.npz"]
        assert TrainerCheckpoint.load(manager.best_path).epoch == 2

    def test_latest_path_and_resolve_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=3)
        assert manager.latest_path() is None
        self._save_epochs(manager, [1, 2, 3])
        latest = manager.latest_path()
        assert latest.endswith("ckpt-00003.npz")
        assert CheckpointManager.resolve(tmp_path) == latest

    def test_resolve_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CheckpointManager.resolve(tmp_path)

    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, save_every=3)
        assert not manager.due(1)
        assert not manager.due(2)
        assert manager.due(3)
        assert manager.due(2, final=True)

    def test_invalid_config(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, save_every=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep_last=0)


class TestRunManifest:
    def test_write_and_load(self, tmp_path):
        manifest = RunManifest(kind="poshgnn-train",
                               config={"lr": 0.01},
                               history=[2.0, 1.0],
                               best_loss=1.0, best_epoch=1, epochs_run=2,
                               guard_events=[{"type": "early_stop"}])
        path = manifest.write(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest
        # and it is plain JSON on disk
        with open(path) as handle:
            assert json.load(handle)["kind"] == "poshgnn-train"

    def test_newer_version_rejected(self, tmp_path):
        manifest = RunManifest(kind="x")
        manifest.schema_version += 1
        path = manifest.write(tmp_path / "m.json")
        with pytest.raises(ValueError, match="version"):
            RunManifest.load(path)

    def test_v1_manifest_loads(self, tmp_path):
        """Pre-observability manifests (``version`` key) still load."""
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"kind": "poshgnn-train",
                                    "history": [1.0], "version": 1}))
        loaded = RunManifest.load(path)
        assert loaded.kind == "poshgnn-train"
        assert loaded.schema_version == 1
        assert loaded.events_path is None
