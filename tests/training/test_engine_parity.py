"""Golden parity: the engine-based trainer reproduces the seed trainer.

``golden_poshgnn_train.json`` was captured from the pre-engine
``POSHGNNTrainer`` (the seed implementation whose loop lived inline in
``train()``): loss history, resolved alpha, run-directory layout, and
SHA-256 digests of every array entry inside the final checkpoint archive
and of every model state tensor.  The refactored trainer must reproduce
all of it bit-identically — whole-file npz digests are not comparable
(the zip container embeds timestamps), so digests are taken per entry
with the ``meta`` JSON entry excluded (it is covered value-wise by the
history/alpha assertions).
"""

import hashlib
import json
import os
import zipfile

import numpy as np
import pytest

from repro.models.poshgnn import POSHGNN, POSHGNNTrainer

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_poshgnn_train.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN) as handle:
        return json.load(handle)


def _entry_digests(npz_path):
    """Per-entry SHA-256 of an npz archive, ``meta.npy`` excluded."""
    digests = {}
    with zipfile.ZipFile(npz_path) as archive:
        for name in archive.namelist():
            if name == "meta.npy":
                continue
            digests[name] = hashlib.sha256(archive.read(name)).hexdigest()
    return digests


def _state_digests(state):
    return {name: hashlib.sha256(
        np.ascontiguousarray(value).tobytes()).hexdigest()
        for name, value in state.items()}


def _golden_trainer(model, run_dir, **overrides):
    kwargs = dict(epochs=5, shuffle=True, seed=3,
                  checkpoint_dir=run_dir, save_every=2)
    kwargs.update(overrides)
    return POSHGNNTrainer(model, **kwargs)


class TestGoldenParity:
    def test_fresh_run_matches_seed_implementation(self, problems, tmp_path,
                                                   golden):
        run_dir = str(tmp_path / "golden")
        model = POSHGNN(seed=0)
        result = _golden_trainer(model, run_dir).train(problems)

        assert result["loss"] == golden["loss_history"]
        assert result["best_loss"] == golden["best_loss"]
        assert result["alpha"] == golden["alpha"]
        assert sorted(os.listdir(run_dir)) == golden["files"]

        final = os.path.join(run_dir, golden["final_checkpoint"])
        assert _entry_digests(final) == golden["entry_sha256"]
        assert _state_digests(model.state_dict()) \
            == golden["model_state_sha256"]

    def test_killed_and_resumed_run_matches_seed_bytes(self, problems,
                                                       tmp_path, golden):
        run_dir = str(tmp_path / "resumed")

        class _Kill(Exception):
            pass

        def kill_after_two(trainer, epoch, history):
            if epoch == 2:
                raise _Kill

        with pytest.raises(_Kill):
            _golden_trainer(POSHGNN(seed=0), run_dir,
                            on_epoch_end=kill_after_two).train(problems)

        model = POSHGNN(seed=0)
        result = _golden_trainer(model, run_dir).train(
            problems, resume_from=run_dir)

        assert result["loss"] == golden["loss_history"]
        final = os.path.join(run_dir, golden["final_checkpoint"])
        assert _entry_digests(final) == golden["entry_sha256"]
        assert _state_digests(model.state_dict()) \
            == golden["model_state_sha256"]
