"""Divergence guards: rollback, lr backoff, bounded retries, early stop."""

import numpy as np
import pytest

import repro.models.poshgnn.trainer as trainer_module
from repro.models import POSHGNN
from repro.models.poshgnn.loss import POSHGNNLoss
from repro.models.poshgnn.trainer import POSHGNNTrainer
from repro.training import (
    DivergenceGuard,
    GuardConfig,
    NonFiniteSignal,
    TrainingDiverged,
)


class _PoisonedLoss(POSHGNNLoss):
    """Returns NaN losses for a configurable set of step_loss calls."""

    poison_calls: set = set()
    calls = 0

    def step_loss(self, *args, **kwargs):
        loss = super().step_loss(*args, **kwargs)
        type(self).calls += 1
        if type(self).calls in self.poison_calls:
            loss = loss * float("nan")
        return loss


@pytest.fixture
def poison(monkeypatch):
    """Patch the trainer's loss with the poisonable variant."""
    _PoisonedLoss.calls = 0
    _PoisonedLoss.poison_calls = set()
    monkeypatch.setattr(trainer_module, "POSHGNNLoss", _PoisonedLoss)
    return _PoisonedLoss


def test_nan_window_rolls_back_and_backs_off(problems, poison):
    poison.poison_calls = {8}  # one window in epoch 0
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(
        model, epochs=4, guard=GuardConfig(max_retries=3, lr_backoff=0.5))
    result = trainer.train(problems)

    events = result["guard_events"]
    assert [event["type"] for event in events] == ["nonfinite_loss"]
    assert events[0]["epoch"] == 0
    assert events[0]["lr_before"] == pytest.approx(0.01)
    assert events[0]["lr_after"] == pytest.approx(0.005)
    assert trainer.optimizer.lr == pytest.approx(0.005)
    # the run recovered: all four epochs trained, model is finite
    assert len(result["loss"]) == 4
    assert all(np.isfinite(value) for value in result["loss"])
    assert all(np.isfinite(param.data).all()
               for param in model.parameters())


def test_nan_grad_norm_detected(problems, monkeypatch):
    calls = {"n": 0}
    from repro.nn import clip_grad_norm as real_clip

    def poisoned_clip(parameters, max_norm):
        parameters = list(parameters)
        calls["n"] += 1
        if calls["n"] == 1:
            for param in parameters:
                if param.grad is not None:
                    param.grad = param.grad * float("nan")
        return real_clip(parameters, max_norm)

    monkeypatch.setattr(trainer_module, "clip_grad_norm", poisoned_clip)
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=2)
    result = trainer.train(problems)
    assert result["guard_events"][0]["type"] == "nonfinite_grad_norm"
    assert all(np.isfinite(param.data).all()
               for param in model.parameters())


def test_persistent_nan_raises_bounded(problems, poison):
    poison.poison_calls = set(range(1, 100_000))  # every window
    model = POSHGNN(seed=0)
    before = model.state_dict()
    trainer = POSHGNNTrainer(model, epochs=4,
                             guard=GuardConfig(max_retries=2))
    with pytest.raises(TrainingDiverged):
        trainer.train(problems)
    # max_retries + 1 attempts, then the model is left at its last good
    # (here: initial) state, never the poisoned one.
    after = model.state_dict()
    for name in before:
        assert np.array_equal(before[name], after[name])


def test_retry_budget_resets_after_success(problems, poison):
    # one poisoned window in epoch 0 and one much later: each gets its
    # own retry budget because a finite epoch resets the counter.
    poison.poison_calls = {8, 50}
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=4,
                             guard=GuardConfig(max_retries=1))
    result = trainer.train(problems)
    assert len(result["loss"]) == 4
    retries = [event["retry"] for event in result["guard_events"]]
    assert retries == [1, 1]


def test_min_lr_floor(problems, poison):
    poison.poison_calls = set(range(1, 100_000))
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(
        model, epochs=2,
        guard=GuardConfig(max_retries=5, lr_backoff=0.1, min_lr=1e-4))
    with pytest.raises(TrainingDiverged):
        trainer.train(problems)
    assert trainer.optimizer.lr == pytest.approx(1e-4)


def test_early_stopping_on_stagnant_best(problems, monkeypatch):
    # force a flat loss history so the best never improves after epoch 0
    flat = iter([5.0] + [6.0] * 50)

    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=30,
                             guard=GuardConfig(patience=3))
    original = trainer._train_episode

    def flat_episode(problem, guard, epoch):
        original(problem, guard, epoch)
        return next(flat)

    monkeypatch.setattr(trainer, "_train_episode", flat_episode)
    result = trainer.train(problems[:1])
    assert result["early_stopped"]
    assert len(result["loss"]) == 4  # 1 best + 3 patience
    assert result["guard_events"][-1]["type"] == "early_stop"


def test_guard_unit_behaviour():
    guard = DivergenceGuard(GuardConfig(max_retries=1, lr_backoff=0.5))
    guard.check_loss(1.0, epoch=0)  # finite: no-op
    with pytest.raises(NonFiniteSignal):
        guard.check_loss(float("nan"), epoch=0)
    with pytest.raises(NonFiniteSignal):
        guard.check_grad_norm(float("inf"), epoch=2)
    signal = NonFiniteSignal("loss", float("nan"), 0)
    assert guard.on_nonfinite(signal, 0.01) == pytest.approx(0.005)
    with pytest.raises(TrainingDiverged):
        guard.on_nonfinite(signal, 0.005)


def test_guard_config_validation():
    with pytest.raises(ValueError):
        GuardConfig(lr_backoff=1.5)
    with pytest.raises(ValueError):
        GuardConfig(max_retries=-1)
    with pytest.raises(ValueError):
        GuardConfig(patience=0)
