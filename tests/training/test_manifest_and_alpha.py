"""Run manifests, PERF wiring, and the alpha re-resolution fix."""

import json
import os

import pytest

from repro.core import AfterProblem
from repro.datasets import RoomConfig, generate_timik_room
from repro.models import POSHGNN
from repro.models.poshgnn.loss import resolve_alpha
from repro.models.poshgnn.trainer import POSHGNNTrainer
from repro.obs import PERF


def test_trainer_keeps_configured_alpha(problems):
    """`train()` must not overwrite the configured "auto" sentinel."""
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=1, alpha="auto")
    trainer.train(problems)
    assert trainer.alpha == "auto"
    assert trainer.resolved_alpha == pytest.approx(
        resolve_alpha(problems, "auto"))


def test_second_train_re_resolves_alpha(problems):
    """A second train() on denser problems re-resolves "auto" freshly."""
    dense_room = generate_timik_room(
        RoomConfig(num_users=40, num_steps=6), seed=1)
    dense_problems = [AfterProblem(dense_room, t) for t in (0, 1)]
    expected_first = resolve_alpha(problems, "auto")
    expected_second = resolve_alpha(dense_problems, "auto")
    assert expected_first != pytest.approx(expected_second)

    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=1, alpha="auto")
    trainer.train(problems)
    assert trainer.resolved_alpha == pytest.approx(expected_first)
    trainer.train(dense_problems)
    assert trainer.resolved_alpha == pytest.approx(expected_second)
    assert trainer.alpha == "auto"


def test_explicit_alpha_passes_through(problems):
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=1, alpha=0.125)
    result = trainer.train(problems)
    assert trainer.resolved_alpha == 0.125
    assert result["alpha"] == 0.125


def test_manifest_written_next_to_checkpoints(problems, tmp_path):
    PERF.reset().enable()
    try:
        model = POSHGNN(seed=0)
        trainer = POSHGNNTrainer(model, epochs=3,
                                 checkpoint_dir=str(tmp_path),
                                 save_every=2)
        result = trainer.train(problems)
    finally:
        PERF.disable()

    manifest_path = os.path.join(str(tmp_path), "manifest.json")
    assert result["manifest_path"] == manifest_path
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    assert manifest["kind"] == "poshgnn-train"
    assert manifest["history"] == result["loss"]
    assert manifest["epochs_run"] == 3
    assert manifest["wall_clock_s"] > 0.0
    assert manifest["config"]["bptt_window"] == 10
    assert manifest["config"]["resolved_alpha"] == pytest.approx(
        result["alpha"])
    # PERF deltas for this run were captured
    assert manifest["perf"]["counters"]["train.epochs"] == 3
    assert manifest["perf"]["counters"]["train.checkpoints"] >= 2
    assert "train.epoch" in manifest["perf"]["timers"]
    # checkpoints listed in the manifest exist on disk
    assert manifest["checkpoints"]
    for path in manifest["checkpoints"]:
        assert os.path.exists(path)


def test_fit_run_dir_layout(problems, tmp_path):
    """POSHGNN.fit(run_dir=...) leaves per-attempt runs + a fit manifest."""
    model = POSHGNN(seed=0)
    history = model.fit(problems, restarts=1, epochs=2,
                        run_dir=str(tmp_path))
    assert history["run_dir"] == str(tmp_path)
    with open(tmp_path / "fit_manifest.json") as handle:
        fit_manifest = json.load(handle)
    attempts = fit_manifest["extra"]["attempts"]
    assert len(attempts) == len(model.preserve_grid)
    assert fit_manifest["extra"]["selected"] in {
        attempt["label"] for attempt in attempts}
    for attempt in attempts:
        attempt_dir = tmp_path / attempt["label"]
        assert (attempt_dir / "manifest.json").exists()
        assert (attempt_dir / "best.npz").exists()


def test_bench_driver_writes_manifests(tmp_path, problems, room):
    """_fit_and_evaluate surfaces per-method manifests under run_dir."""
    from repro.bench.config import BenchConfig
    from repro.bench.experiments import _fit_and_evaluate

    config = BenchConfig(num_users=room.num_users, num_steps=6,
                         train_targets=2, eval_targets=2, train_epochs=1,
                         run_dir=str(tmp_path))
    results = _fit_and_evaluate(
        room, {"POSHGNN": POSHGNN(seed=0)},
        train_targets=[0, 1], eval_targets=[2, 3],
        config=config, alpha0=0.5)
    assert "POSHGNN" in results
    with open(tmp_path / "bench_poshgnn.json") as handle:
        manifest = json.load(handle)
    assert manifest["kind"] == "bench-fit"
    assert manifest["config"]["method"] == "POSHGNN"
    assert manifest["wall_clock_s"] > 0.0
    assert manifest["history"]
    # the fit itself trained under the run_dir with checkpoints
    assert (tmp_path / "poshgnn" / "fit_manifest.json").exists()
