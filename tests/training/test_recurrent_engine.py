"""Engine-backed training for the recurrent baselines (DCRNN / T-GCN).

Mirrors the POSHGNN coverage in this directory: the alpha-resolution
regression (a configured ``alpha="auto"`` re-resolves on every ``fit()``
call and is never overwritten), kill-and-resume bit-identity for both
baselines, schema-v2 run manifests + ``events.jsonl`` per attempt, and
``restore_fit`` round trips for resumable bench tables.
"""

import json
import os

import numpy as np
import pytest

from repro.core import AfterProblem
from repro.datasets import RoomConfig, generate_timik_room
from repro.models import DCRNNRecommender, TGCNRecommender
from repro.models.poshgnn.loss import resolve_alpha
from repro.obs import read_events
from repro.training import RunManifest

BASELINES = [DCRNNRecommender, TGCNRecommender]

FIT_KWARGS = dict(epochs=4, restarts=2, save_every=2)


class _Kill(Exception):
    pass


def _params(model):
    return {name: parameter.data.copy()
            for name, parameter in model.named_parameters()}


def _assert_same_params(a, b):
    assert sorted(a) == sorted(b)
    for name in a:
        np.testing.assert_array_equal(a[name], b[name])


class TestAlphaResolution:
    def test_auto_alpha_re_resolves_on_every_fit(self, problems):
        """Two successive fits on different problem sets each resolve
        their own alpha — the first resolution must not stick."""
        other_room = generate_timik_room(
            RoomConfig(num_users=8, num_steps=5), seed=7)
        other_problems = [AfterProblem(other_room, t) for t in (0, 1)]
        expected_a = resolve_alpha(problems, "auto")
        expected_b = resolve_alpha(other_problems, "auto")
        assert expected_a != expected_b

        rec = DCRNNRecommender(seed=0)
        first = rec.fit(problems, epochs=2, restarts=1, alpha="auto")
        second = rec.fit(other_problems, epochs=2, restarts=1, alpha="auto")
        assert first["alpha"] == expected_a
        assert second["alpha"] == expected_b

    def test_explicit_alpha_is_used_verbatim(self, problems):
        rec = TGCNRecommender(seed=0)
        result = rec.fit(problems, epochs=2, restarts=1, alpha=0.05)
        assert result["alpha"] == 0.05


class TestKillAndResume:
    @pytest.mark.parametrize("cls", BASELINES)
    def test_kill_mid_first_attempt_resumes_bit_identically(
            self, cls, problems, tmp_path):
        gold_model = cls(seed=0)
        gold = gold_model.fit(problems, run_dir=str(tmp_path / "gold"),
                              **FIT_KWARGS)

        run_dir = str(tmp_path / "run")
        epochs_seen = []

        def kill(engine, epoch, history):
            epochs_seen.append(epoch)
            if len(epochs_seen) == 3:   # attempt 0, end of epoch 3 of 4
                raise _Kill

        with pytest.raises(_Kill):
            cls(seed=0).fit(problems, run_dir=run_dir,
                            on_epoch_end=kill, **FIT_KWARGS)

        resumed_model = cls(seed=0)
        resumed = resumed_model.fit(problems, run_dir=run_dir,
                                    resume_from=run_dir, **FIT_KWARGS)

        assert resumed["loss"] == gold["loss"]
        assert resumed["train_utility"] == gold["train_utility"]
        _assert_same_params(_params(gold_model), _params(resumed_model))

    def test_completed_attempts_fast_forward(self, problems, tmp_path):
        """Killing during attempt 1 must not re-train attempt 0: its
        final checkpoint fast-forwards and only attempt 1 trains."""
        gold_model = DCRNNRecommender(seed=0)
        gold = gold_model.fit(problems, run_dir=str(tmp_path / "gold"),
                              **FIT_KWARGS)

        run_dir = str(tmp_path / "run")
        epochs_seen = []

        def kill(engine, epoch, history):
            epochs_seen.append(epoch)
            if len(epochs_seen) == 6:   # attempt 1, end of epoch 2 of 4
                raise _Kill

        with pytest.raises(_Kill):
            DCRNNRecommender(seed=0).fit(problems, run_dir=run_dir,
                                         on_epoch_end=kill, **FIT_KWARGS)

        resumed_epochs = []

        def record(engine, epoch, history):
            resumed_epochs.append(epoch)

        resumed_model = DCRNNRecommender(seed=0)
        resumed = resumed_model.fit(problems, run_dir=run_dir,
                                    resume_from=run_dir,
                                    on_epoch_end=record, **FIT_KWARGS)

        assert resumed_epochs == [3, 4]   # attempt 1's remaining epochs
        assert resumed["loss"] == gold["loss"]
        _assert_same_params(_params(gold_model), _params(resumed_model))


class TestFitArtifacts:
    @pytest.fixture(scope="class")
    def fitted(self, problems, tmp_path_factory):
        run_dir = str(tmp_path_factory.mktemp("dcrnn-fit"))
        model = DCRNNRecommender(seed=0)
        result = model.fit(problems, run_dir=run_dir, **FIT_KWARGS)
        return model, result, run_dir

    def test_each_attempt_writes_schema_v2_manifest(self, fitted):
        _model, _result, run_dir = fitted
        for label in ("attempt0", "attempt1"):
            manifest = RunManifest.load(
                os.path.join(run_dir, label, "manifest.json"))
            assert manifest.schema_version == 2
            assert manifest.kind == "dcrnn-train"
            assert manifest.config["alpha"] == "auto"
            assert manifest.config["resolved_alpha"] is not None
            assert len(manifest.history) == FIT_KWARGS["epochs"]
            assert manifest.checkpoints

    def test_each_attempt_writes_events_jsonl(self, fitted):
        _model, _result, run_dir = fitted
        events = read_events(
            os.path.join(run_dir, "attempt0", "events.jsonl"))
        types = {event["type"] for event in events}
        assert {"train.start", "checkpoint.save",
                "train.complete"} <= types

    def test_fit_manifest_marks_completion(self, fitted):
        _model, result, run_dir = fitted
        with open(os.path.join(run_dir, "fit_manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["kind"] == "dcrnn-fit"
        assert manifest["extra"]["complete"] is True
        assert manifest["extra"]["selected"] in ("attempt0", "attempt1")
        assert os.path.exists(manifest["extra"]["model_path"])
        assert result["run_dir"] == run_dir

    def test_restore_fit_round_trips(self, fitted):
        model, _result, run_dir = fitted
        fresh = DCRNNRecommender(seed=3)
        assert fresh.restore_fit(run_dir) is True
        _assert_same_params(_params(model), _params(fresh))

    def test_restore_fit_rejects_incomplete_dir(self, tmp_path):
        assert DCRNNRecommender(seed=0).restore_fit(str(tmp_path)) is False
        with open(tmp_path / "fit_manifest.json", "w") as handle:
            json.dump({"kind": "dcrnn-fit", "schema_version": 2,
                       "extra": {"complete": False}}, handle)
        assert DCRNNRecommender(seed=0).restore_fit(str(tmp_path)) is False
