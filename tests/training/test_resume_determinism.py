"""Resume must be bit-identical to an uninterrupted run."""

import numpy as np
import pytest

from repro.models import POSHGNN
from repro.models.poshgnn.trainer import POSHGNNTrainer
from repro.nn import MLP, Adam, SGD
from repro.training import TrainerCheckpoint


def _assert_states_equal(left: dict, right: dict):
    assert set(left) == set(right)
    for name in left:
        assert np.array_equal(left[name], right[name]), name


def _train_straight(problems, epochs, **kwargs):
    model = POSHGNN(seed=0)
    trainer = POSHGNNTrainer(model, epochs=epochs, **kwargs)
    result = trainer.train(problems)
    return model, trainer, result


@pytest.mark.parametrize("shuffle", [False, True])
def test_interrupt_resume_bit_identical(problems, tmp_path, shuffle):
    """5 epochs + checkpoint + 5 resumed == 10 epochs straight."""
    directory = tmp_path / ("shuffled" if shuffle else "ordered")
    model_a, trainer_a, result_a = _train_straight(
        problems, 10, shuffle=shuffle, seed=3)

    # Interrupted run: only 5 epochs, checkpointing every epoch.
    model_b = POSHGNN(seed=0)
    POSHGNNTrainer(model_b, epochs=5, shuffle=shuffle, seed=3,
                   checkpoint_dir=str(directory)).train(problems)

    # Fresh process stand-in: new model, new trainer, resumed mid-run.
    model_c = POSHGNN(seed=0)
    trainer_c = POSHGNNTrainer(model_c, epochs=10, shuffle=shuffle, seed=3)
    result_c = trainer_c.train(problems, resume_from=str(directory))

    assert result_a["loss"] == result_c["loss"]
    assert result_a["best_loss"] == result_c["best_loss"]
    _assert_states_equal(model_a.state_dict(), model_c.state_dict())

    optim_a = trainer_a.optimizer.state_dict()
    optim_c = trainer_c.optimizer.state_dict()
    assert optim_a["hyper"] == optim_c["hyper"]
    for key in ("m", "v"):
        for left, right in zip(optim_a["slots"][key],
                               optim_c["slots"][key]):
            assert np.array_equal(left, right)


def test_resume_from_explicit_file(problems, tmp_path):
    model_a, _, result_a = _train_straight(problems, 6)

    model_b = POSHGNN(seed=0)
    POSHGNNTrainer(model_b, epochs=4, checkpoint_dir=str(tmp_path),
                   save_every=2).train(problems)

    model_c = POSHGNN(seed=0)
    result_c = POSHGNNTrainer(model_c, epochs=6).train(
        problems, resume_from=str(tmp_path / "ckpt-00004.npz"))
    assert result_a["loss"] == result_c["loss"]
    _assert_states_equal(model_a.state_dict(), model_c.state_dict())


def test_resume_past_end_is_noop(problems, tmp_path):
    model_a = POSHGNN(seed=0)
    result_a = POSHGNNTrainer(model_a, epochs=4,
                              checkpoint_dir=str(tmp_path)).train(problems)

    model_b = POSHGNN(seed=0)
    result_b = POSHGNNTrainer(model_b, epochs=4).train(
        problems, resume_from=str(tmp_path))
    assert result_b["epochs_run"] == 0
    assert result_b["loss"] == result_a["loss"]
    _assert_states_equal(model_a.state_dict(), model_b.state_dict())


def test_checkpoint_preserves_best_model_selection(problems, tmp_path):
    """The best-epoch snapshot survives interruption, not just the last."""
    model_a, _, result_a = _train_straight(problems, 8)
    model_b = POSHGNN(seed=0)
    POSHGNNTrainer(model_b, epochs=7, checkpoint_dir=str(tmp_path),
                   keep_last=2).train(problems)
    model_c = POSHGNN(seed=0)
    result_c = POSHGNNTrainer(model_c, epochs=8).train(
        problems, resume_from=str(tmp_path))
    assert result_a["best_loss"] == result_c["best_loss"]
    _assert_states_equal(model_a.state_dict(), model_c.state_dict())


# ----------------------------------------------------------------------
# Optimizer round-trips through the checkpoint format
# ----------------------------------------------------------------------
def _step(optimizer, model, rng):
    for param in model.parameters():
        param.grad = rng.normal(size=param.data.shape)
    optimizer.step()


@pytest.mark.parametrize("factory", [
    lambda params: Adam(params, lr=0.05, betas=(0.8, 0.95),
                        weight_decay=1e-3),
    lambda params: SGD(params, lr=0.05, momentum=0.9),
])
def test_optimizer_checkpoint_round_trip_resumes_identically(
        tmp_path, factory):
    """Continue-after-restore matches an uninterrupted optimiser."""
    rng_a = np.random.default_rng(1)
    model_a = MLP([3, 4, 2], np.random.default_rng(0))
    optim_a = factory(model_a.parameters())
    for _ in range(4):
        _step(optim_a, model_a, rng_a)

    # Same trajectory but checkpointed + restored after step 2.
    rng_b = np.random.default_rng(1)
    model_b = MLP([3, 4, 2], np.random.default_rng(0))
    optim_b = factory(model_b.parameters())
    for _ in range(2):
        _step(optim_b, model_b, rng_b)
    checkpoint = TrainerCheckpoint(model_state=model_b.state_dict(),
                                   optimizer_state=optim_b.state_dict(),
                                   epoch=2)
    path = checkpoint.save(tmp_path / "optim")

    model_c = MLP([3, 4, 2], np.random.default_rng(5))  # different init
    optim_c = factory(model_c.parameters())
    loaded = TrainerCheckpoint.load(path)
    model_c.load_state_dict(loaded.model_state)
    optim_c.load_state_dict(loaded.optimizer_state)
    # burn the first two rounds of draws so run C sees rounds 3-4
    rng_c = np.random.default_rng(1)
    for _ in range(2):
        for param in model_c.parameters():
            rng_c.normal(size=param.data.shape)
    for _ in range(2):
        _step(optim_c, model_c, rng_c)

    for left, right in zip(model_a.parameters(), model_c.parameters()):
        assert np.array_equal(left.data, right.data)


def test_optimizer_state_validation():
    model = MLP([2, 2], np.random.default_rng(0))
    optimizer = Adam(model.parameters())
    state = optimizer.state_dict()
    with pytest.raises(KeyError):
        optimizer.load_state_dict({"hyper": {}, "slots": state["slots"]})
    bad = {"hyper": state["hyper"],
           "slots": {"m": state["slots"]["m"][:1],
                     "v": state["slots"]["v"]}}
    with pytest.raises(ValueError, match="entries"):
        optimizer.load_state_dict(bad)
