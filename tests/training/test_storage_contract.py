"""One shared contract suite for every CheckpointStore backend.

Local-directory, in-memory, sharded fan-out and buffer-backed stores
must be interchangeable under :class:`~repro.training.CheckpointManager` and the
training engine: array archives round-trip bit-identically, JSON
documents round-trip value-identically, ``list``/``exists``/``delete``
reflect exactly the blobs written, and illegal names are rejected the
same way everywhere.  Backend-specific layout guarantees (sharding of
archives, metadata at the root, ``memory://`` locators) are pinned
separately below.
"""

import io
import json
import os
import zipfile

import numpy as np
import pytest

from repro.models.poshgnn import POSHGNN, POSHGNNTrainer
from repro.training import (
    BufferStore,
    CheckpointManager,
    InMemoryStore,
    LocalDirectoryStore,
    ShardedDirectoryStore,
    TrainerCheckpoint,
    open_directory_store,
)

BACKENDS = ["local", "memory", "sharded", "buffer"]


def make_store(kind, tmp_path):
    if kind == "local":
        return LocalDirectoryStore(tmp_path / "store")
    if kind == "memory":
        return InMemoryStore()
    if kind == "buffer":
        return BufferStore()
    return ShardedDirectoryStore(tmp_path / "store", fanout=4)


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    return make_store(request.param, tmp_path)


ARRAYS = {
    "meta": np.array(json.dumps({"epoch": 3})),
    "model/weight": np.arange(6, dtype=np.float64).reshape(2, 3),
    "optim/state/#0/m": np.full(4, 0.25, dtype=np.float32),
}


class TestStoreContract:
    def test_arrays_round_trip_bit_identically(self, store):
        store.write_arrays("ckpt-00003.npz", ARRAYS)
        loaded = store.read_arrays("ckpt-00003.npz")
        assert sorted(loaded) == sorted(ARRAYS)
        for name, value in ARRAYS.items():
            assert loaded[name].dtype == np.asarray(value).dtype
            np.testing.assert_array_equal(loaded[name], value)

    def test_json_round_trips(self, store):
        payload = {"kind": "test", "history": [1.5, 0.5], "extra": None}
        store.write_json("manifest.json", payload)
        assert store.read_json("manifest.json") == payload

    def test_list_and_exists_reflect_writes(self, store):
        assert store.list() == []
        store.write_arrays("ckpt-00001.npz", ARRAYS)
        store.write_json("manifest.json", {})
        assert store.list() == ["ckpt-00001.npz", "manifest.json"]
        assert store.exists("ckpt-00001.npz")
        assert not store.exists("ckpt-00002.npz")

    def test_delete_removes_and_raises_when_missing(self, store):
        store.write_arrays("ckpt-00001.npz", ARRAYS)
        store.delete("ckpt-00001.npz")
        assert store.list() == []
        with pytest.raises(FileNotFoundError):
            store.delete("ckpt-00001.npz")

    def test_overwrite_replaces(self, store):
        store.write_json("manifest.json", {"epoch": 1})
        store.write_json("manifest.json", {"epoch": 2})
        assert store.read_json("manifest.json") == {"epoch": 2}
        assert store.list() == ["manifest.json"]

    @pytest.mark.parametrize("name", ["", ".", "..", "a/b",
                                      os.sep.join(("a", "b"))])
    def test_illegal_names_rejected(self, store, name):
        with pytest.raises(ValueError):
            store.write_json(name, {})
        with pytest.raises(ValueError):
            store.locator(name)

    def test_locators_are_stable_and_distinct(self, store):
        store.write_arrays("ckpt-00001.npz", ARRAYS)
        assert store.locator("ckpt-00001.npz") \
            == store.locator("ckpt-00001.npz")
        assert store.locator("ckpt-00001.npz") != store.locator("best.npz")
        assert store.locator("ckpt-00001.npz").startswith(store.root)

    def test_file_path_contract(self, store):
        store.write_json("manifest.json", {})
        path = store.file_path("manifest.json")
        if isinstance(store, (InMemoryStore, BufferStore)):
            assert path is None
        else:
            assert os.path.exists(path)

    def test_checkpoint_manager_runs_on_any_backend(self, store):
        manager = CheckpointManager(store, save_every=1, keep_last=2)
        for epoch in (1, 2, 3):
            checkpoint = TrainerCheckpoint(
                model_state={"w": np.full(3, float(epoch))},
                optimizer_state={"step": epoch}, epoch=epoch,
                history=[1.0 / epoch])
            manager.save(checkpoint, is_best=True)
        assert [epoch for epoch, _ in manager.epoch_checkpoints()] == [2, 3]
        loaded, locator = manager.load_latest()
        assert loaded.epoch == 3
        assert locator == manager.epoch_path(3)
        np.testing.assert_array_equal(loaded.model_state["w"],
                                      np.full(3, 3.0))

    def test_load_latest_empty_raises(self, store):
        with pytest.raises(FileNotFoundError):
            CheckpointManager(store).load_latest()


class TestBackendEquivalence:
    def test_archive_entry_bytes_match_across_backends(self, tmp_path):
        """The npz *entries* a backend stores are byte-identical to the
        historical local layout (containers differ only in zip
        timestamps)."""
        digests = []
        for kind in BACKENDS:
            store = make_store(kind, tmp_path / kind)
            store.write_arrays("ckpt-00001.npz", ARRAYS)
            if isinstance(store, InMemoryStore):
                raw = store._blobs["ckpt-00001.npz"]
            elif isinstance(store, BufferStore):
                raw = store._read_bytes("ckpt-00001.npz")
            else:
                with open(store.file_path("ckpt-00001.npz"), "rb") as fh:
                    raw = fh.read()
            with zipfile.ZipFile(io.BytesIO(raw)) as archive:
                digests.append({name: archive.read(name)
                                for name in sorted(archive.namelist())})
        assert all(digest == digests[0] for digest in digests[1:])


class TestShardedLayout:
    def test_archives_shard_and_metadata_stays_at_root(self, tmp_path):
        store = ShardedDirectoryStore(tmp_path / "run", fanout=4)
        store.write_arrays("ckpt-00001.npz", ARRAYS)
        store.write_json("manifest.json", {})
        shard = store.shard_of("ckpt-00001.npz")
        assert shard is not None
        assert os.path.exists(
            os.path.join(store.root, shard, "ckpt-00001.npz"))
        assert store.shard_of("manifest.json") is None
        assert os.path.exists(os.path.join(store.root, "manifest.json"))
        assert store.list() == ["ckpt-00001.npz", "manifest.json"]

    def test_shard_assignment_is_stable(self, tmp_path):
        a = ShardedDirectoryStore(tmp_path / "a", fanout=8)
        b = ShardedDirectoryStore(tmp_path / "b", fanout=8)
        for name in ("ckpt-00001.npz", "ckpt-00042.npz", "best.npz"):
            assert a.shard_of(name) == b.shard_of(name)

    def test_fanout_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedDirectoryStore(tmp_path, fanout=0)

    def test_open_directory_store_detects_layout(self, tmp_path):
        flat = LocalDirectoryStore(tmp_path / "flat")
        flat.write_arrays("ckpt-00001.npz", ARRAYS)
        sharded = ShardedDirectoryStore(tmp_path / "sharded", fanout=4)
        sharded.write_arrays("ckpt-00001.npz", ARRAYS)
        assert isinstance(open_directory_store(tmp_path / "flat"),
                          LocalDirectoryStore)
        assert isinstance(open_directory_store(tmp_path / "sharded"),
                          ShardedDirectoryStore)


class TestTrainingOnBackends:
    def test_memory_store_kill_and_resume_matches_plain_run(self, problems):
        gold_model = POSHGNN(seed=0)
        gold = POSHGNNTrainer(gold_model, epochs=4, seed=3).train(problems)

        store = InMemoryStore()

        class _Kill(Exception):
            pass

        def kill(trainer, epoch, history):
            if epoch == 2:
                raise _Kill

        with pytest.raises(_Kill):
            POSHGNNTrainer(POSHGNN(seed=0), epochs=4, seed=3,
                           checkpoint_dir=store,
                           on_epoch_end=kill).train(problems)

        model = POSHGNN(seed=0)
        result = POSHGNNTrainer(model, epochs=4, seed=3,
                                checkpoint_dir=store).train(
            problems, resume_from=store)
        assert result["loss"] == gold["loss"]
        assert result["checkpoint_dir"].startswith("memory://")
        assert result["events_path"] is None
        for (name_a, pa), (name_b, pb) in zip(
                gold_model.named_parameters(), model.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)
        manifest = store.read_json("manifest.json")
        assert manifest["kind"] == "poshgnn-train"
        assert manifest["schema_version"] == 2

    def test_sharded_store_train_and_resume_from_directory(self, problems,
                                                           tmp_path):
        run_dir = tmp_path / "sharded-run"
        store = ShardedDirectoryStore(run_dir, fanout=4)

        class _Kill(Exception):
            pass

        def kill(trainer, epoch, history):
            if epoch == 2:
                raise _Kill

        with pytest.raises(_Kill):
            POSHGNNTrainer(POSHGNN(seed=0), epochs=4, seed=3,
                           checkpoint_dir=store,
                           on_epoch_end=kill).train(problems)

        # Resume by *path*: resolve() detects the sharded layout.
        model = POSHGNN(seed=0)
        result = POSHGNNTrainer(
            model, epochs=4, seed=3,
            checkpoint_dir=open_directory_store(run_dir)).train(
            problems, resume_from=str(run_dir))

        gold_model = POSHGNN(seed=0)
        gold = POSHGNNTrainer(gold_model, epochs=4, seed=3).train(problems)
        assert result["loss"] == gold["loss"]
        assert os.path.exists(os.path.join(run_dir, "manifest.json"))
        assert os.path.exists(os.path.join(run_dir, "events.jsonl"))
        final = open_directory_store(run_dir).locator("ckpt-00004.npz")
        assert os.sep + "shard-" in final and os.path.exists(final)


class TestBufferStoreSpecifics:
    def test_locator_scheme_and_refs_surface(self):
        with BufferStore() as store:
            store.write_arrays("ckpt-00001.npz", ARRAYS)
            assert store.root.startswith("buffer://")
            assert store.locator("ckpt-00001.npz") \
                == f"{store.root}/ckpt-00001.npz"
            refs = store.refs()
            assert set(refs) == {"ckpt-00001.npz"}
            assert refs["ckpt-00001.npz"].dtype == "uint8"

    def test_close_releases_every_blob(self):
        from repro import buffers

        backend = buffers.active()
        before = backend.stats().live_blocks
        store = BufferStore(backend)
        store.write_arrays("ckpt-00001.npz", ARRAYS)
        store.write_json("manifest.json", {"epoch": 1})
        assert backend.stats().live_blocks == before + 2
        store.close()
        assert backend.stats().live_blocks == before
        store.close()  # idempotent

    def test_overwrite_releases_previous_allocation(self):
        from repro import buffers

        backend = buffers.active()
        before = backend.stats().live_blocks
        with BufferStore(backend) as store:
            store.write_json("manifest.json", {"epoch": 1})
            store.write_json("manifest.json", {"epoch": 2})
            assert backend.stats().live_blocks == before + 1
            assert store.read_json("manifest.json") == {"epoch": 2}
