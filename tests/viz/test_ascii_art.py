"""Tests for the ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.core import AfterProblem
from repro.datasets import RoomConfig, generate_timik_room
from repro.viz import panorama_strip, room_map, utility_sparkline


@pytest.fixture(scope="module")
def scene():
    room = generate_timik_room(RoomConfig(num_users=15, num_steps=3), seed=0)
    problem = AfterProblem(room, target=0)
    return room, problem.frame_at(0)


class TestRoomMap:
    def test_contains_target_marker(self, scene):
        room, frame = scene
        art = room_map(room.trajectory[0], 0, room.room,
                       interfaces_mr=room.interfaces_mr)
        assert "T" in art

    def test_dimensions(self, scene):
        room, _frame = scene
        art = room_map(room.trajectory[0], 0, room.room, width=30, height=10)
        lines = art.splitlines()
        assert lines[0] == "+" + "-" * 30 + "+"
        assert len(lines) == 10 + 3  # borders + legend

    def test_rendered_users_uppercased(self, scene):
        room, _frame = scene
        rendered = np.zeros(15, dtype=bool)
        rendered[1:] = True
        art = room_map(room.trajectory[0], 0, room.room,
                       interfaces_mr=room.interfaces_mr, rendered=rendered)
        assert ("M" in art) or ("R" in art)

    def test_out_of_room_positions_clamped(self):
        from repro.geometry import Room
        positions = np.array([[99.0, 99.0], [-5.0, -5.0]])
        art = room_map(positions, 0, Room.square(4.0))
        assert "T" in art  # no IndexError


class TestPanoramaStrip:
    def test_empty_when_nothing_rendered(self, scene):
        _room, frame = scene
        target_is_vr = not frame.interfaces_mr[frame.target]
        strip = panorama_strip(frame, np.zeros(15, dtype=bool))
        if target_is_vr:
            assert set(strip.splitlines()[0]) <= {" "}

    def test_rendered_users_appear(self, scene):
        _room, frame = scene
        rendered = np.zeros(15, dtype=bool)
        rendered[frame.candidates()[:3]] = True
        strip = panorama_strip(frame, rendered).splitlines()[0]
        assert any(ch.isdigit() or ch == "x" for ch in strip)

    def test_width_respected(self, scene):
        _room, frame = scene
        strip = panorama_strip(frame, np.zeros(15, dtype=bool), width=40)
        assert len(strip.splitlines()[0]) == 40


class TestSparkline:
    def test_empty(self):
        assert utility_sparkline(np.array([])) == ""

    def test_length_matches_input(self):
        assert len(utility_sparkline(np.ones(10))) == 10

    def test_downsamples_long_series(self):
        assert len(utility_sparkline(np.ones(500), width=60)) == 60

    def test_monotone_levels(self):
        line = utility_sparkline(np.array([0.0, 0.5, 1.0]))
        from repro.viz.ascii_art import SPARK_LEVELS
        assert SPARK_LEVELS.index(line[0]) <= SPARK_LEVELS.index(line[1]) \
            <= SPARK_LEVELS.index(line[2])

    def test_all_zero_series(self):
        line = utility_sparkline(np.zeros(5))
        assert line == " " * 5
